//! The analysis-engine layer: one driver for every detector and every
//! event source.
//!
//! The paper's whole experimental argument rests on all analyses observing
//! *identical* serial depth-first executions. Before this module existed,
//! that guarantee was re-implemented ad hoc by every consumer: the bench
//! harness wired a [`Monitor`] by hand, `tracetool` had its own replay
//! loop, and each test suite drove detectors with bespoke code. The engine
//! centralizes the contract in two small traits:
//!
//! * [`Analysis`] — the consumer side. Promotes the DTRG detector's
//!   `apply_control` / `check_read_at` / `check_write_at` split to a
//!   workspace-level interface: **control events** (task create/end,
//!   finish start/end, `get`, alloc) mutate analysis-global state, while
//!   **access checks** are addressed to a single location and carry an
//!   explicit global access index. The split is what makes offline
//!   sharding possible (broadcast control, route accesses by location);
//!   analyses whose checks really are location-independent additionally
//!   implement [`LocRoutable`].
//! * [`EventSource`] — the producer side. Live serial execution, an
//!   in-memory recorded event log, and streamed trace decoding (flat v1 or
//!   framed v2, strict or lenient) all implement it, so
//!   [`run_analysis`] is the single entry point replacing every bespoke
//!   loop.
//!
//! The driver also does the bookkeeping every consumer used to duplicate:
//! events consumed, checks performed, and wall time are accumulated in
//! [`EngineCounters`] and returned with the analysis report in an
//! [`AnalysisOutcome`].
//!
//! ```
//! use futrace_runtime::engine::{run_analysis, source, Analysis};
//! use futrace_runtime::{Event, EventLog, run_serial};
//! use futrace_util::ids::{LocId, TaskId};
//!
//! /// Toy analysis: counts write checks.
//! #[derive(Default)]
//! struct WriteCounter(u64);
//! impl Analysis for WriteCounter {
//!     type Report = u64;
//!     fn apply_control(&mut self, _e: &Event) {}
//!     fn check_read_at(&mut self, _t: TaskId, _l: LocId, _i: u64) {}
//!     fn check_write_at(&mut self, _t: TaskId, _l: LocId, _i: u64) {
//!         self.0 += 1;
//!     }
//!     fn finish(self) -> u64 {
//!         self.0
//!     }
//! }
//!
//! // Live execution and replay of a recording go through the same driver.
//! let program = |ctx: &mut futrace_runtime::SerialCtx<_>| {};
//! let live = run_analysis(source::live(program), WriteCounter::default()).unwrap();
//! let mut log = EventLog::new();
//! run_serial(&mut log, |_ctx| {});
//! let replayed = run_analysis(source::recorded(&log.events), WriteCounter::default()).unwrap();
//! assert_eq!(live.report, replayed.report);
//! ```

#![warn(missing_docs)]

use crate::monitor::{self, Event, Monitor, TaskKind};
use crate::serial::{run_serial, SerialCtx};
use futrace_util::ids::{FinishId, LocId, TaskId};
use futrace_util::stats::Timer;
use std::convert::Infallible;

/// A trace analysis: anything that consumes the instrumentation event
/// stream split into control events and loc-addressed access checks.
///
/// The contract mirrors the serial depth-first execution the paper
/// requires (§4.1): `apply_control` receives every non-access event in
/// order, and each `Read`/`Write` event becomes exactly one
/// `check_read_at` / `check_write_at` call carrying the access's index in
/// the *global* access stream. The index is assigned by the driver (or by
/// the sharded router, from one pass) so reports produced on different
/// backends can be aligned and merged deterministically.
pub trait Analysis {
    /// What the analysis produces when the stream ends.
    type Report;

    /// Applies one control event (never `Read`/`Write`).
    fn apply_control(&mut self, e: &Event);

    /// Checks a shared-memory read by `task` at `loc`; `index` is the
    /// access's position in the global access stream.
    fn check_read_at(&mut self, task: TaskId, loc: LocId, index: u64);

    /// Checks a shared-memory write by `task` at `loc`.
    fn check_write_at(&mut self, task: TaskId, loc: LocId, index: u64);

    /// Checks a flat run of consecutive accesses; `ops[k]` carries global
    /// index `first_index + k`. The default implementation dispatches each
    /// op to `check_read_at`/`check_write_at`, so the contract is exactly
    /// the per-event one; analyses may override it to amortize per-check
    /// overhead across a run (the batched decode path produces long runs —
    /// real traces are access-dominated).
    fn check_batch(&mut self, ops: &[AccessOp], first_index: u64) {
        for (k, op) in ops.iter().enumerate() {
            let index = first_index + k as u64;
            if op.write {
                self.check_write_at(op.task, op.loc, index);
            } else {
                self.check_read_at(op.task, op.loc, index);
            }
        }
    }

    /// Consumes the analysis and produces its final report (runs any
    /// deferred work, e.g. the closure detector's whole analysis).
    fn finish(self) -> Self::Report;
}

/// One flattened shared-memory access: an element of a batched run of
/// consecutive `Read`/`Write` events (see [`Analysis::check_batch`] and
/// [`Engine::consume_slice`]). Three words, `Copy`, no enum dispatch —
/// the batched hot path moves these instead of [`Event`] values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOp {
    /// The accessing task.
    pub task: TaskId,
    /// The accessed location.
    pub loc: LocId,
    /// True for a write, false for a read.
    pub write: bool,
}

/// Capability marker for analyses whose access checks are independent per
/// location: control events may be broadcast to replicas and accesses
/// routed by `loc % N` without changing any verdict.
///
/// The DTRG detector and the vector-clock baseline qualify (their
/// control-driven state never depends on shadow memory, and each check
/// touches exactly one shadow cell). Baselines that need the global
/// access order — or that finalize over the whole recorded graph, like
/// the transitive-closure oracle — simply do not implement this trait,
/// which is what "opting out" of the sharded backend means.
pub trait LocRoutable: Analysis {
    /// Merges per-shard reports (given in shard order) into the report the
    /// serial run would have produced. `self` is a fresh, unused instance
    /// whose configuration (e.g. report caps) governs the merge.
    fn merge_sharded(self, shards: Vec<Self::Report>) -> Self::Report;
}

/// Error restoring an analysis from a checkpoint state blob: the blob is
/// truncated, corrupt, or was written by an incompatible analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateError(pub String);

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis state restore failed: {}", self.0)
    }
}

impl std::error::Error for StateError {}

impl From<futrace_util::wire::WireError> for StateError {
    fn from(e: futrace_util::wire::WireError) -> Self {
        StateError(e.to_string())
    }
}

/// A [`LocRoutable`] analysis whose *access-derived* state can be
/// serialized and restored, enabling checkpoint/resume (DESIGN S38).
///
/// The split matters: control-driven state (the DTRG, vector clocks,
/// task/finish bookkeeping) is rebuilt exactly by replaying the compact
/// control-event prefix through [`Analysis::apply_control`] — the same
/// property that makes sharding sound. Only state produced by access
/// *checks* (shadow cells, discovered races, dedup sets, access
/// counters) needs to round-trip through `save_state`/`restore_state`.
/// A checkpoint is therefore: control prefix (v1 codec) + one opaque
/// state blob per shard.
///
/// Contract: for any event prefix P and suffix S, running P, saving,
/// restoring into a fresh instance that replayed P's control events, and
/// running S must produce the same report as running P then S directly.
/// Backend-cost counters (e.g. DTRG query expansions) are exempt, as they
/// already are for the sharded merge.
pub trait Checkpointable: LocRoutable {
    /// Appends the access-derived state to `out` (self-delimiting).
    fn save_state(&self, out: &mut Vec<u8>);

    /// Restores access-derived state saved by [`Checkpointable::save_state`]
    /// into `self`, which must be a fresh instance that has already
    /// replayed the checkpoint's control-event prefix.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError>;
}

/// Driver bookkeeping: what one [`run_analysis`] call consumed and did.
/// Replaces the one-off event/check counting individual consumers used to
/// maintain.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineCounters {
    /// Total events consumed (control + accesses).
    pub events: u64,
    /// Control events applied.
    pub control_events: u64,
    /// Read checks performed.
    pub reads: u64,
    /// Write checks performed.
    pub writes: u64,
    /// Wall-clock time of the whole run (drive + finish), in ms.
    pub wall_ms: f64,
    /// Shard workers restarted from a checkpoint after dying or stalling
    /// (supervised pipeline only; 0 elsewhere).
    pub shard_restarts: u64,
    /// Runs degraded from the sharded to the serial path after an
    /// unrecoverable worker failure (0 or 1 per run).
    pub degradations: u64,
    /// Runs that started from a checkpoint instead of the beginning of
    /// the trace (0 or 1 per run).
    pub resumed_from_checkpoint: u64,
    /// Hot-path cache hits reported by the analysis (0 for analyses
    /// without caches). The engine never fills these itself: consumers
    /// copy them from analysis statistics after the run so the display
    /// can surface them next to the driver's own counts.
    pub cache_hits: u64,
    /// Hot-path cache misses reported by the analysis (0 for analyses
    /// without caches).
    pub cache_misses: u64,
}

impl EngineCounters {
    /// Access checks performed (reads + writes).
    pub fn checks(&self) -> u64 {
        self.reads + self.writes
    }

    /// True when the supervised pipeline recorded any recovery action.
    pub fn had_supervision_events(&self) -> bool {
        self.shard_restarts > 0 || self.degradations > 0 || self.resumed_from_checkpoint > 0
    }
}

impl std::fmt::Display for EngineCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events ({} control, {} checks: {} reads + {} writes) in {:.2} ms",
            self.events,
            self.control_events,
            self.checks(),
            self.reads,
            self.writes,
            self.wall_ms
        )?;
        // Cache statistics are appended only when the analysis has a
        // cache, so output consumed by CI diffs is unchanged elsewhere.
        if self.cache_hits > 0 || self.cache_misses > 0 {
            write!(
                f,
                "; cache: {} hit(s), {} miss(es)",
                self.cache_hits, self.cache_misses
            )?;
        }
        // Supervision outcomes are appended only when something happened,
        // so output consumed by CI diffs is unchanged for clean runs.
        if self.had_supervision_events() {
            write!(
                f,
                "; supervision: {} restart(s), {} degradation(s), {} resume(s)",
                self.shard_restarts, self.degradations, self.resumed_from_checkpoint
            )?;
        }
        Ok(())
    }
}

/// An analysis report plus the driver's counters.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome<R> {
    /// What [`Analysis::finish`] produced.
    pub report: R,
    /// Driver bookkeeping for the run.
    pub counters: EngineCounters,
}

impl<R> AnalysisOutcome<R> {
    /// Maps the report, keeping the counters (used by registries that
    /// erase concrete report types into an enum).
    pub fn map<S>(self, f: impl FnOnce(R) -> S) -> AnalysisOutcome<S> {
        AnalysisOutcome {
            report: f(self.report),
            counters: self.counters,
        }
    }
}

/// The engine core: wraps an [`Analysis`], numbers the access stream, and
/// keeps [`EngineCounters`]. Implements [`Monitor`] so the serial executor
/// can drive it directly (the live source), and exposes [`Engine::consume`]
/// for replayed event streams — both paths are guaranteed to split the
/// stream identically.
pub struct Engine<A: Analysis> {
    analysis: A,
    counters: EngineCounters,
    next_index: u64,
    /// Reused batch buffer for [`Engine::consume_slice`], so flattening a
    /// run of accesses allocates only on growth.
    batch: Vec<AccessOp>,
}

impl<A: Analysis> Engine<A> {
    /// Fresh engine around `analysis`.
    pub fn new(analysis: A) -> Self {
        Engine {
            analysis,
            counters: EngineCounters::default(),
            next_index: 0,
            batch: Vec::new(),
        }
    }

    /// A peek at the running analysis, for incremental drivers (the
    /// session layer reads races-so-far between chunks without tearing
    /// the engine down).
    pub fn analysis(&self) -> &A {
        &self.analysis
    }

    /// A peek at the counters accumulated so far (the finished totals
    /// come from [`Engine::into_parts`]).
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// Feeds a slice of events, batching each run of consecutive
    /// `Read`/`Write` events into one [`Analysis::check_batch`] call.
    /// Equivalent to calling [`Engine::consume`] per event (same splits,
    /// same indices, same counters) — only the dispatch granularity
    /// changes, which is what the batched decode paths are for.
    pub fn consume_slice(&mut self, events: &[Event]) {
        let mut i = 0;
        while i < events.len() {
            match events[i] {
                Event::Read(..) | Event::Write(..) => {
                    self.batch.clear();
                    let mut writes = 0u64;
                    while let Some(e) = events.get(i) {
                        let op = match *e {
                            Event::Read(task, loc) => AccessOp {
                                task,
                                loc,
                                write: false,
                            },
                            Event::Write(task, loc) => {
                                writes += 1;
                                AccessOp {
                                    task,
                                    loc,
                                    write: true,
                                }
                            }
                            _ => break,
                        };
                        self.batch.push(op);
                        i += 1;
                    }
                    let n = self.batch.len() as u64;
                    self.counters.events += n;
                    self.counters.writes += writes;
                    self.counters.reads += n - writes;
                    let first = self.next_index;
                    self.next_index = first + n;
                    self.analysis.check_batch(&self.batch, first);
                }
                ref control => {
                    self.counters.events += 1;
                    self.counters.control_events += 1;
                    self.analysis.apply_control(control);
                    i += 1;
                }
            }
        }
    }

    /// Feeds one event: control events go to
    /// [`Analysis::apply_control`], accesses become numbered checks.
    pub fn consume(&mut self, e: &Event) {
        match *e {
            Event::Read(task, loc) => self.read_check(task, loc),
            Event::Write(task, loc) => self.write_check(task, loc),
            ref control => {
                self.counters.events += 1;
                self.counters.control_events += 1;
                self.analysis.apply_control(control);
            }
        }
    }

    #[inline]
    fn read_check(&mut self, task: TaskId, loc: LocId) {
        self.counters.events += 1;
        self.counters.reads += 1;
        let i = self.next_index;
        self.next_index = i + 1;
        self.analysis.check_read_at(task, loc, i);
    }

    #[inline]
    fn write_check(&mut self, task: TaskId, loc: LocId) {
        self.counters.events += 1;
        self.counters.writes += 1;
        let i = self.next_index;
        self.next_index = i + 1;
        self.analysis.check_write_at(task, loc, i);
    }

    /// Decomposes the engine into the analysis and the counters collected
    /// so far (`wall_ms` is filled in by [`run_analysis`]).
    pub fn into_parts(self) -> (A, EngineCounters) {
        (self.analysis, self.counters)
    }
}

impl<A: Analysis> Monitor for Engine<A> {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        self.consume(&Event::TaskCreate {
            parent,
            child,
            kind,
            ief,
        });
    }
    fn task_end(&mut self, task: TaskId) {
        self.consume(&Event::TaskEnd(task));
    }
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        self.consume(&Event::FinishStart(task, finish));
    }
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        self.consume(&Event::FinishEnd(task, finish, joined.to_vec()));
    }
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        self.consume(&Event::Get { waiter, awaited });
    }
    // Hot path: skip building an Event value for accesses.
    fn read(&mut self, task: TaskId, loc: LocId) {
        self.read_check(task, loc);
    }
    fn write(&mut self, task: TaskId, loc: LocId) {
        self.write_check(task, loc);
    }
    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        self.consume(&Event::Alloc(base, n, name.to_string()));
    }
}

/// A producer of instrumentation events for one analysis run.
///
/// The three ways events exist today — live serial execution, an
/// in-memory recording, and streamed trace decoding — are all sources;
/// [`run_analysis`] is generic over them. The trait is parameterized by
/// the analysis so the live source can name the concrete monitor type the
/// serial executor is instantiated with.
pub trait EventSource<A: Analysis> {
    /// Stream-level failure (decode error, damaged chunk, …).
    /// [`Infallible`] for live execution and in-memory recordings.
    type Error;

    /// Produces every event of the run, in serial depth-first order, into
    /// the engine.
    fn drive(self, engine: &mut Engine<A>) -> Result<(), Self::Error>;
}

/// Event-source constructors. See [`live`](source::live),
/// [`recorded`](source::recorded), and [`stream`](source::stream).
pub mod source {
    use super::*;

    /// Live serial depth-first execution of a DSL program (see
    /// [`live`]).
    pub struct Live<F>(F);

    /// Source that executes `f` under the serial depth-first executor,
    /// feeding the instrumentation stream straight into the analysis —
    /// no events are materialized for the access hot path.
    pub fn live<F>(f: F) -> Live<F> {
        Live(f)
    }

    impl<A, F> EventSource<A> for Live<F>
    where
        A: Analysis,
        F: FnOnce(&mut SerialCtx<Engine<A>>),
    {
        type Error = Infallible;
        fn drive(self, engine: &mut Engine<A>) -> Result<(), Infallible> {
            run_serial(engine, self.0);
            Ok(())
        }
    }

    /// An in-memory recorded event stream (see [`recorded`]).
    pub struct Recorded<'a>(&'a [Event]);

    /// Source that replays a recorded event slice (an
    /// [`crate::EventLog`]'s `events`, or anything decoded up front).
    pub fn recorded(events: &[Event]) -> Recorded<'_> {
        Recorded(events)
    }

    impl<A: Analysis> EventSource<A> for Recorded<'_> {
        type Error = Infallible;
        fn drive(self, engine: &mut Engine<A>) -> Result<(), Infallible> {
            // The whole recording is one in-memory slice: drive it through
            // the batched path so access runs dispatch as flat slices.
            engine.consume_slice(self.0);
            Ok(())
        }
    }

    /// A fallible decoded event stream (see [`stream`]).
    pub struct Stream<I>(I);

    /// Source over any fallible event iterator: the v1 flat decoder
    /// (`trace::decode_iter`), the framed v2 chunk reader (strict or
    /// lenient), or the format-sniffing union of both. The first stream
    /// error aborts the run and is returned from [`run_analysis`].
    pub fn stream<I, E>(events: I) -> Stream<I>
    where
        I: Iterator<Item = Result<Event, E>>,
    {
        Stream(events)
    }

    impl<A, I, E> EventSource<A> for Stream<I>
    where
        A: Analysis,
        I: Iterator<Item = Result<Event, E>>,
    {
        type Error = E;
        fn drive(self, engine: &mut Engine<A>) -> Result<(), E> {
            for item in self.0 {
                engine.consume(&item?);
            }
            Ok(())
        }
    }

    /// A fallible stream of decoded event chunks (see [`chunks`]).
    pub struct Chunks<I>(I);

    /// Source over an iterator of whole decoded chunks (e.g. the framed
    /// v2 reader's per-chunk event vectors). Each chunk is fed through
    /// the batched [`Engine::consume_slice`] path, so runs of consecutive
    /// accesses dispatch as flat [`AccessOp`] slices instead of one event
    /// at a time — the per-event source overhead that the one-at-a-time
    /// [`stream`] source pays on access-dominated traces. The first chunk
    /// error aborts the run.
    pub fn chunks<I, E>(it: I) -> Chunks<I>
    where
        I: Iterator<Item = Result<Vec<Event>, E>>,
    {
        Chunks(it)
    }

    impl<A, I, E> EventSource<A> for Chunks<I>
    where
        A: Analysis,
        I: Iterator<Item = Result<Vec<Event>, E>>,
    {
        type Error = E;
        fn drive(self, engine: &mut Engine<A>) -> Result<(), E> {
            for chunk in self.0 {
                engine.consume_slice(&chunk?);
            }
            Ok(())
        }
    }
}

/// Runs `analysis` over every event `source` produces and returns its
/// report plus the driver's counters. This is the *only* sanctioned way
/// to drive a detector: live runs, replays, and trace streams all come
/// through here, so they are guaranteed to observe identical splits of
/// the event stream (and identical global access indices).
pub fn run_analysis<A, S>(source: S, analysis: A) -> Result<AnalysisOutcome<A::Report>, S::Error>
where
    A: Analysis,
    S: EventSource<A>,
{
    let t = Timer::start();
    let mut engine = Engine::new(analysis);
    source.drive(&mut engine)?;
    let (analysis, mut counters) = engine.into_parts();
    let report = analysis.finish();
    counters.wall_ms = t.elapsed_ms();
    Ok(AnalysisOutcome { report, counters })
}

/// [`run_analysis`] over live serial execution — infallible, so the
/// outcome is returned directly.
pub fn run_analysis_live<A, F>(f: F, analysis: A) -> AnalysisOutcome<A::Report>
where
    A: Analysis,
    F: FnOnce(&mut SerialCtx<Engine<A>>),
{
    match run_analysis(source::live(f), analysis) {
        Ok(outcome) => outcome,
        Err(never) => match never {},
    }
}

/// [`run_analysis`] over an in-memory recording — infallible.
pub fn run_analysis_recorded<A: Analysis>(
    events: &[Event],
    analysis: A,
) -> AnalysisOutcome<A::Report> {
    match run_analysis(source::recorded(events), analysis) {
        Ok(outcome) => outcome,
        Err(never) => match never {},
    }
}

/// Adapter for [`Monitor`]-based analyses: forwards one control event to
/// the corresponding monitor callback. `Analysis::apply_control`
/// implementations over existing monitors are one call to this.
pub fn control_to_monitor<M: Monitor>(mon: &mut M, e: &Event) {
    debug_assert!(
        !matches!(e, Event::Read(..) | Event::Write(..)),
        "accesses must go through check_read_at/check_write_at"
    );
    monitor::apply(mon, e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TaskCtx;
    use crate::monitor::EventLog;

    /// Analysis that re-records the stream it sees (control + indexed
    /// accesses), for asserting the driver's routing.
    #[derive(Debug, Default)]
    struct Probe {
        control: Vec<Event>,
        checks: Vec<(bool, TaskId, LocId, u64)>,
    }

    impl Analysis for Probe {
        type Report = Self;
        fn apply_control(&mut self, e: &Event) {
            self.control.push(e.clone());
        }
        fn check_read_at(&mut self, task: TaskId, loc: LocId, index: u64) {
            self.checks.push((false, task, loc, index));
        }
        fn check_write_at(&mut self, task: TaskId, loc: LocId, index: u64) {
            self.checks.push((true, task, loc, index));
        }
        fn finish(self) -> Self {
            self
        }
    }

    fn demo_program(ctx: &mut SerialCtx<Engine<Probe>>) {
        let x = ctx.shared_var(0u64, "x");
        x.write(ctx, 1);
        let x2 = x.clone();
        let f = ctx.future(move |ctx| {
            let _ = x2.read(ctx);
        });
        ctx.get(&f);
        let _ = x.read(ctx);
    }

    #[test]
    fn live_splits_and_numbers_the_stream() {
        let out = run_analysis_live(demo_program, Probe::default());
        let probe = out.report;
        // alloc, task create/end, get, implicit finish end, main task end.
        assert!(probe
            .control
            .iter()
            .any(|e| matches!(e, Event::Alloc(_, 1, name) if name == "x")));
        assert!(probe
            .control
            .iter()
            .any(|e| matches!(e, Event::Get { .. })));
        // write(main), read(future), read(main) — indices are global.
        let kinds: Vec<(bool, u64)> = probe.checks.iter().map(|c| (c.0, c.3)).collect();
        assert_eq!(kinds, vec![(true, 0), (false, 1), (false, 2)]);
        assert_eq!(out.counters.reads, 2);
        assert_eq!(out.counters.writes, 1);
        assert_eq!(out.counters.checks(), 3);
        assert_eq!(
            out.counters.events,
            out.counters.control_events + out.counters.checks()
        );
        assert!(out.counters.wall_ms >= 0.0);
    }

    #[test]
    fn live_and_recorded_observe_identical_streams() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1);
            let x2 = x.clone();
            let f = ctx.future(move |ctx| {
                let _ = x2.read(ctx);
            });
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        let live = run_analysis_live(demo_program, Probe::default());
        let replayed = run_analysis_recorded(&log.events, Probe::default());
        assert_eq!(live.report.control, replayed.report.control);
        assert_eq!(live.report.checks, replayed.report.checks);
        let (mut a, mut b) = (live.counters, replayed.counters);
        a.wall_ms = 0.0;
        b.wall_ms = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn stream_source_propagates_errors_and_stops() {
        let events: Vec<Result<Event, &str>> = vec![
            Ok(Event::Write(TaskId(0), LocId(0))),
            Err("damaged"),
            Ok(Event::Write(TaskId(0), LocId(1))),
        ];
        let err = run_analysis(source::stream(events.into_iter()), Probe::default()).unwrap_err();
        assert_eq!(err, "damaged");
    }

    #[test]
    fn consume_slice_matches_per_event_consume() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(4, 0u64, "a");
            a.write(ctx, 0, 1);
            a.write(ctx, 1, 2);
            let a2 = a.clone();
            let f = ctx.future(move |ctx| {
                let _ = a2.read(ctx, 0);
                let _ = a2.read(ctx, 1);
                a2.write(ctx, 2, 3);
            });
            ctx.get(&f);
            let _ = a.read(ctx, 2);
        });

        let mut per_event = Engine::new(Probe::default());
        for e in &log.events {
            per_event.consume(e);
        }
        let mut batched = Engine::new(Probe::default());
        batched.consume_slice(&log.events);

        let (pa, ca) = per_event.into_parts();
        let (pb, cb) = batched.into_parts();
        assert_eq!(pa.control, pb.control);
        assert_eq!(pa.checks, pb.checks, "same checks, same global indices");
        assert_eq!(ca, cb);
    }

    #[test]
    fn chunks_source_matches_stream_source() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1);
            let x2 = x.clone();
            let f = ctx.future(move |ctx| {
                let _ = x2.read(ctx);
            });
            ctx.get(&f);
            let _ = x.read(ctx);
        });

        // Split the recording into uneven chunks (including an empty one).
        let cuts = [0, 1, log.events.len() / 2, log.events.len()];
        let chunks: Vec<Result<Vec<Event>, &str>> = cuts
            .windows(2)
            .map(|w| Ok(log.events[w[0]..w[1]].to_vec()))
            .collect();
        let chunked = run_analysis(source::chunks(chunks.into_iter()), Probe::default()).unwrap();
        let streamed = run_analysis(
            source::stream(log.events.iter().cloned().map(Ok::<Event, &str>)),
            Probe::default(),
        )
        .unwrap();
        assert_eq!(chunked.report.control, streamed.report.control);
        assert_eq!(chunked.report.checks, streamed.report.checks);

        // Errors propagate from the chunk stream.
        let bad: Vec<Result<Vec<Event>, &str>> = vec![Ok(Vec::new()), Err("damaged")];
        let err = run_analysis(source::chunks(bad.into_iter()), Probe::default()).unwrap_err();
        assert_eq!(err, "damaged");
    }

    #[test]
    fn counters_display_shows_cache_stats_only_when_present() {
        let c = EngineCounters {
            events: 3,
            ..EngineCounters::default()
        };
        assert!(!c.to_string().contains("cache"), "{c}");
        let cached = EngineCounters {
            cache_hits: 5,
            cache_misses: 2,
            ..c
        };
        assert!(
            cached.to_string().contains("cache: 5 hit(s), 2 miss(es)"),
            "{cached}"
        );
    }

    #[test]
    fn counters_display_is_informative() {
        let c = EngineCounters {
            events: 10,
            control_events: 4,
            reads: 4,
            writes: 2,
            wall_ms: 1.25,
            ..EngineCounters::default()
        };
        let s = c.to_string();
        assert!(s.contains("10 events"), "{s}");
        assert!(s.contains("6 checks"), "{s}");
        assert!(
            !s.contains("supervision"),
            "clean runs keep the legacy wording: {s}"
        );
        let supervised = EngineCounters {
            shard_restarts: 2,
            degradations: 1,
            resumed_from_checkpoint: 1,
            ..c
        };
        let s = supervised.to_string();
        assert!(
            s.contains("supervision: 2 restart(s), 1 degradation(s), 1 resume(s)"),
            "{s}"
        );
    }
}
