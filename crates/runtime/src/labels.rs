//! DePa-style fork-path labels for tasks under parallel execution.
//!
//! DePa (arXiv 2204.14168) attaches O(1)-maintained timestamp labels to
//! tasks so that order queries on the hot path are label comparisons
//! rather than graph traversals. We adopt the fork half of that scheme:
//! a [`TaskLabel`] is the task's *spawn path* — the sequence of per-parent
//! spawn ordinals from the root task down to the task itself — stored as a
//! persistent (`Arc`-linked) list so that creating a child label is O(1)
//! work at spawn time and cloning is a reference-count bump.
//!
//! Two facts make these labels load-bearing for online detection:
//!
//! 1. **Lexicographic order over spawn paths is exactly the serial-elision
//!    order.** In a depth-first serial execution every spawned body runs to
//!    completion at its spawn point, so tasks start in depth-first preorder
//!    of the fork tree — which is precisely [`TaskLabel::df_cmp`]. The
//!    online pipeline's canonical walker replays tasks in this order and
//!    uses labels to *verify* (debug-assert) that the serial [`TaskId`]s it
//!    assigns are monotone in label order.
//! 2. **Ancestry is a sound happens-before fragment.** If `a` is a strict
//!    ancestor of `b` in the fork tree ([`TaskLabel::is_ancestor_of`]),
//!    then `a`'s prefix up to the spawn precedes all of `b` in every
//!    execution — no graph query needed. Everything the fork tree cannot
//!    decide (joins via `finish`, point-to-point future `get` edges) is
//!    delegated to the DTRG, mirroring how Utterback et al. (arXiv
//!    1901.00622) layer future edges over a structural order maintenance
//!    core.
//!
//! [`TaskId`]: futrace_util::ids::TaskId

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A fork-path label: the spawn path from the root task to this task.
///
/// Cloning is O(1) (an `Arc` bump); deriving a child label is O(1)
/// ([`TaskLabel::child`]); comparisons are O(depth).
#[derive(Clone)]
pub struct TaskLabel {
    node: Option<Arc<Node>>,
}

struct Node {
    parent: Option<Arc<Node>>,
    /// Ordinal of this task among its parent's spawns (0-based).
    seq: u32,
    /// Number of edges from the root (root = 0, its children = 1, ...).
    depth: u32,
}

impl TaskLabel {
    /// The root (main) task's label: the empty spawn path.
    pub fn root() -> TaskLabel {
        TaskLabel { node: None }
    }

    /// Label for this task's `seq`-th spawned child. O(1).
    pub fn child(&self, seq: u32) -> TaskLabel {
        TaskLabel {
            node: Some(Arc::new(Node {
                parent: self.node.clone(),
                seq,
                depth: self.depth() + 1,
            })),
        }
    }

    /// Number of edges from the root: 0 for the root task.
    pub fn depth(&self) -> u32 {
        self.node.as_ref().map_or(0, |n| n.depth)
    }

    /// The spawn path from the root, outermost ordinal first.
    pub fn path(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.depth() as usize];
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            out[n.depth as usize - 1] = n.seq;
            cur = n.parent.as_deref();
        }
        out
    }

    /// True iff `self` is a *strict* ancestor of `other` in the fork tree.
    ///
    /// This is the label-only happens-before fragment: an ancestor's
    /// pre-spawn prefix precedes the descendant in every execution.
    pub fn is_ancestor_of(&self, other: &TaskLabel) -> bool {
        let (da, db) = (self.depth(), other.depth());
        if da >= db {
            return false;
        }
        // Walk `other` up to `self`'s depth, then compare nodes.
        let mut cur = other.node.as_deref();
        while let Some(n) = cur {
            if n.depth == da {
                break;
            }
            cur = n.parent.as_deref();
        }
        match (self.node.as_deref(), cur) {
            (None, _) => true, // root is an ancestor of every deeper task
            (Some(a), Some(b)) => std::ptr::eq(a, b) || Self::path_eq(a, b),
            (Some(_), None) => false,
        }
    }

    /// Depth-first preorder over the fork tree: the serial-elision start
    /// order. An ancestor orders before every descendant; siblings order
    /// by spawn ordinal.
    pub fn df_cmp(&self, other: &TaskLabel) -> Ordering {
        let (pa, pb) = (self.path(), other.path());
        pa.cmp(&pb)
    }

    fn path_eq(a: &Node, b: &Node) -> bool {
        if a.depth != b.depth {
            return false;
        }
        let (mut x, mut y) = (Some(a), Some(b));
        while let (Some(na), Some(nb)) = (x, y) {
            if std::ptr::eq(na, nb) {
                return true; // shared suffix: equal from here up
            }
            if na.seq != nb.seq {
                return false;
            }
            x = na.parent.as_deref();
            y = nb.parent.as_deref();
        }
        true
    }
}

impl PartialEq for TaskLabel {
    fn eq(&self, other: &Self) -> bool {
        match (self.node.as_deref(), other.node.as_deref()) {
            (None, None) => true,
            (Some(a), Some(b)) => Self::path_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for TaskLabel {}

impl PartialOrd for TaskLabel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.df_cmp(other))
    }
}

impl Ord for TaskLabel {
    fn cmp(&self, other: &Self) -> Ordering {
        self.df_cmp(other)
    }
}

impl fmt::Debug for TaskLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TaskLabel(")?;
        for (i, seq) in self.path().iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{seq}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_orders_before_children() {
        let root = TaskLabel::root();
        let c0 = root.child(0);
        let c1 = root.child(1);
        assert_eq!(root.df_cmp(&c0), Ordering::Less);
        assert_eq!(c0.df_cmp(&c1), Ordering::Less);
        assert_eq!(c1.df_cmp(&c0), Ordering::Greater);
        assert_eq!(c0.df_cmp(&c0), Ordering::Equal);
    }

    #[test]
    fn ancestor_before_later_sibling_subtree() {
        // root -> a(0) -> aa(0); root -> b(1). Serial order: root, a, aa, b.
        let root = TaskLabel::root();
        let a = root.child(0);
        let aa = a.child(0);
        let b = root.child(1);
        assert_eq!(a.df_cmp(&aa), Ordering::Less);
        assert_eq!(aa.df_cmp(&b), Ordering::Less);
        assert!(a.is_ancestor_of(&aa));
        assert!(!a.is_ancestor_of(&b));
        assert!(!aa.is_ancestor_of(&a));
        assert!(root.is_ancestor_of(&aa));
        assert!(!root.is_ancestor_of(&root));
    }

    #[test]
    fn equality_is_structural() {
        let root = TaskLabel::root();
        let a = root.child(3).child(1);
        let b = root.child(3).child(1);
        assert_eq!(a, b);
        assert_ne!(a, root.child(3).child(2));
        assert_eq!(a.path(), vec![3, 1]);
        assert_eq!(a.depth(), 2);
    }

    #[test]
    fn df_order_matches_serial_preorder_on_random_trees() {
        // Generate a random fork tree, enumerate it in depth-first preorder
        // (= serial-elision spawn order), and check labels sort identically.
        let mut rng = futrace_util::rng::seeded(0xdead_beef);
        for _ in 0..50 {
            let mut preorder: Vec<TaskLabel> = Vec::new();
            fn gen(
                rng: &mut futrace_util::rng::Rng,
                label: &TaskLabel,
                depth: u32,
                out: &mut Vec<TaskLabel>,
            ) {
                out.push(label.clone());
                if depth >= 5 {
                    return;
                }
                let kids = rng.gen_range(0u32..4);
                for seq in 0..kids {
                    gen(rng, &label.child(seq), depth + 1, out);
                }
            }
            gen(&mut rng, &TaskLabel::root(), 0, &mut preorder);
            for w in preorder.windows(2) {
                assert_eq!(w[0].df_cmp(&w[1]), Ordering::Less);
            }
            let mut shuffled: Vec<usize> = (0..preorder.len()).collect();
            // Fisher–Yates with the seeded rng.
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let mut relabeled: Vec<(usize, TaskLabel)> = shuffled
                .into_iter()
                .map(|i| (i, preorder[i].clone()))
                .collect();
            relabeled.sort_by(|a, b| a.1.df_cmp(&b.1));
            let order: Vec<usize> = relabeled.into_iter().map(|(i, _)| i).collect();
            assert_eq!(order, (0..preorder.len()).collect::<Vec<_>>());
        }
    }
}
