//! Task-parallel programming model with `async`, `finish`, and futures.
//!
//! This crate is the substrate the paper's race detector runs on: an
//! embedded Rust DSL providing the Habanero-Java–style constructs the paper
//! targets (§2):
//!
//! * `async { S }` — spawn a child task ([`api::TaskCtx::async_task`]),
//! * `finish { S }` — wait for all tasks transitively spawned in `S`
//!   ([`api::TaskCtx::finish`]),
//! * `future<T> f = async<T> Expr` / `f.get()` — first-class task handles
//!   with point-to-point joins ([`api::TaskCtx::future`] /
//!   [`api::TaskCtx::get`]).
//!
//! Two executors implement the model:
//!
//! * [`serial`] — **serial depth-first execution** (the serial-elision
//!   order): every spawned body runs to completion at its spawn point. This
//!   is the execution order the paper's detector requires (§4.1) and the
//!   one on which every instrumentation [`monitor::Monitor`] is driven.
//! * [`parallel`] — a help-first work-stealing pool with blocking futures
//!   and finish counters, used to demonstrate the paper's determinism
//!   property (race-free ⇒ same answer as the serial elision) and the
//!   Appendix-A deadlock scenario, which [`parallel`] detects via global
//!   stall detection. Under [`online`]'s driver the same pool records
//!   per-task buffers from which a canonical walker reconstructs the
//!   serial-elision stream *while the program runs*, feeding detector
//!   shards through the concurrency-capable [`online::ParMonitor`]
//!   surface ([`labels`] carries the DePa-style fork-path labels that
//!   certify the walk order).
//!
//! Shared memory ([`memory::SharedVar`], [`memory::SharedArray`]) routes
//! every read and write through the active executor so instrumentation sees
//! the full access stream.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod accumulator;
pub mod api;
pub mod engine;
pub mod labels;
pub mod memory;
pub mod monitor;
pub mod online;
pub mod parallel;
pub mod serial;
pub mod sync;
pub mod trace;

pub use api::TaskCtx;
pub use engine::{
    run_analysis, run_analysis_live, run_analysis_recorded, Analysis, AnalysisOutcome,
    Checkpointable, Engine, EngineCounters, EventSource, LocRoutable, StateError,
};
pub use labels::TaskLabel;
pub use memory::{SharedArray, SharedVar};
pub use monitor::{replay, Event, EventLog, Monitor, NullMonitor, TaskKind};
pub use online::{
    run_online, OnlineError, OnlineOptions, OnlineRun, OnlineStats, ParMonitor, Serialized,
};
pub use parallel::{run_parallel, run_parallel_seeded, DeadlockError, ParCtx, ParHandle};
pub use serial::{run_serial, FutureHandle, SerialCtx};
