//! Instrumented shared memory.
//!
//! The programming model communicates through side effects on shared
//! variables (§2). [`SharedVar`] and [`SharedArray`] are the only mutable
//! state the DSL exposes; every access goes through the executor (a
//! [`MemCtx`]) so instrumentation observes the complete access stream — the
//! equivalent of the paper's bytecode pass instrumenting "reads and writes
//! to shared memory locations".
//!
//! Storage is a plain `std::sync::atomic::AtomicU64` per cell, with element
//! types bridged through the [`Word`] trait (every benchmark payload —
//! `f64`, `u64`, `i64`, `u8`, … — is a machine word, stored via a lossless
//! bit conversion). That makes the same program runnable unchanged under
//! the serial depth-first executor *and* the parallel work-stealing
//! executor: for a program the detector proves race-free, the parallel
//! execution is guaranteed to compute the serial elision's answer (the
//! paper's determinism property, Appendix A), and even for racy demo
//! programs a torn read can never occur. Accesses use `Relaxed` ordering —
//! cross-task ordering is established by the runtime's own synchronization
//! (finish joins, future gets), and word-sized atomics rule out tearing
//! regardless of ordering.

use futrace_util::ids::LocId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A value storable in one shared-memory cell: any `Copy` type with a
/// lossless round-trip through `u64` bits. Implemented for the primitive
/// integer and float types up to 64 bits, plus `bool`.
pub trait Word: Copy + Send + Sync + 'static {
    /// Encodes the value into a 64-bit word.
    fn to_word(self) -> u64;
    /// Decodes a value previously produced by [`Word::to_word`].
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_word_int {
    ($($t:ty),*) => {$(
        impl Word for $t {
            #[inline]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}

impl_word_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Word for f64 {
    #[inline]
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
}

impl Word for f32 {
    #[inline]
    fn to_word(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        f32::from_bits(w as u32)
    }
}

impl Word for bool {
    #[inline]
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

/// Executor-side hooks shared memory needs: location allocation and access
/// notification. Implemented by the serial executor (forwarding to its
/// [`crate::monitor::Monitor`]) and by the parallel executor (allocation
/// only; parallel runs are not instrumented).
pub trait MemCtx {
    /// Reserves `n` fresh location ids and returns the first; `name` is a
    /// debug label surfaced in race reports.
    fn alloc(&mut self, n: u32, name: &str) -> LocId;

    /// Called before every shared read of `loc` by the current task.
    fn on_read(&mut self, loc: LocId);

    /// Called before every shared write of `loc` by the current task.
    fn on_write(&mut self, loc: LocId);
}

/// A fixed-length array of shared cells, one shadow-memory location per
/// element. Cloning is cheap (an `Arc` bump) so handles can be captured by
/// task closures.
pub struct SharedArray<T> {
    base: LocId,
    cells: Arc<[AtomicU64]>,
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        SharedArray {
            base: self.base,
            cells: Arc::clone(&self.cells),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Word> SharedArray<T> {
    /// Allocates a shared array of `len` copies of `fill` under `ctx`.
    ///
    /// # Panics
    /// Panics if `len` does not fit in `u32`.
    pub fn new(ctx: &mut impl MemCtx, len: usize, fill: T, name: &str) -> Self {
        let n = u32::try_from(len).expect("shared array too large");
        let base = ctx.alloc(n, name);
        let cells: Arc<[AtomicU64]> = (0..len).map(|_| AtomicU64::new(fill.to_word())).collect();
        SharedArray {
            base,
            cells,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// First location id of this array (element `i` is `base + i`).
    pub fn base(&self) -> LocId {
        self.base
    }

    /// Location id of element `i`.
    #[inline]
    pub fn loc(&self, i: usize) -> LocId {
        debug_assert!(i < self.cells.len());
        LocId(self.base.0 + i as u32)
    }

    /// Instrumented read of element `i`.
    #[inline]
    pub fn read(&self, ctx: &mut impl MemCtx, i: usize) -> T {
        ctx.on_read(self.loc(i));
        T::from_word(self.cells[i].load(Ordering::Relaxed))
    }

    /// Instrumented write of element `i`.
    #[inline]
    pub fn write(&self, ctx: &mut impl MemCtx, i: usize, v: T) {
        ctx.on_write(self.loc(i));
        self.cells[i].store(v.to_word(), Ordering::Relaxed);
    }

    /// Uninstrumented read, for verifying results *after* a run. Using this
    /// inside a task body would hide the access from the race detector.
    pub fn peek(&self, i: usize) -> T {
        T::from_word(self.cells[i].load(Ordering::Relaxed))
    }

    /// Uninstrumented write, for seeding inputs *before* a run (e.g. from a
    /// workload generator whose writes are not part of the program under
    /// analysis).
    pub fn poke(&self, i: usize, v: T) {
        self.cells[i].store(v.to_word(), Ordering::Relaxed);
    }

    /// Copies the whole array out (uninstrumented; for result checking).
    pub fn snapshot(&self) -> Vec<T> {
        self.cells
            .iter()
            .map(|c| T::from_word(c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// A single shared cell — a one-element [`SharedArray`] with scalar
/// accessors.
pub struct SharedVar<T> {
    arr: SharedArray<T>,
}

impl<T> Clone for SharedVar<T> {
    fn clone(&self) -> Self {
        SharedVar {
            arr: self.arr.clone(),
        }
    }
}

impl<T: Word> SharedVar<T> {
    /// Allocates a shared variable initialized to `init`.
    pub fn new(ctx: &mut impl MemCtx, init: T, name: &str) -> Self {
        SharedVar {
            arr: SharedArray::new(ctx, 1, init, name),
        }
    }

    /// This variable's shadow-memory location.
    pub fn loc(&self) -> LocId {
        self.arr.base()
    }

    /// Instrumented read.
    #[inline]
    pub fn read(&self, ctx: &mut impl MemCtx) -> T {
        self.arr.read(ctx, 0)
    }

    /// Instrumented write.
    #[inline]
    pub fn write(&self, ctx: &mut impl MemCtx, v: T) {
        self.arr.write(ctx, 0, v)
    }

    /// Uninstrumented read for post-run assertions.
    pub fn peek(&self) -> T {
        self.arr.peek(0)
    }

    /// Uninstrumented write for pre-run seeding.
    pub fn poke(&self, v: T) {
        self.arr.poke(0, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal MemCtx that counts accesses and allocates densely.
    #[derive(Default)]
    struct CountingCtx {
        next: u32,
        reads: Vec<LocId>,
        writes: Vec<LocId>,
    }

    impl MemCtx for CountingCtx {
        fn alloc(&mut self, n: u32, _name: &str) -> LocId {
            let base = LocId(self.next);
            self.next += n;
            base
        }
        fn on_read(&mut self, loc: LocId) {
            self.reads.push(loc);
        }
        fn on_write(&mut self, loc: LocId) {
            self.writes.push(loc);
        }
    }

    #[test]
    fn array_allocates_dense_locations() {
        let mut ctx = CountingCtx::default();
        let a: SharedArray<u64> = SharedArray::new(&mut ctx, 4, 0, "a");
        let b: SharedArray<u64> = SharedArray::new(&mut ctx, 2, 0, "b");
        assert_eq!(a.base(), LocId(0));
        assert_eq!(a.loc(3), LocId(3));
        assert_eq!(b.base(), LocId(4));
        assert_eq!(b.loc(1), LocId(5));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn reads_and_writes_are_instrumented() {
        let mut ctx = CountingCtx::default();
        let a: SharedArray<i64> = SharedArray::new(&mut ctx, 3, 7, "a");
        assert_eq!(a.read(&mut ctx, 1), 7);
        a.write(&mut ctx, 1, 42);
        assert_eq!(a.read(&mut ctx, 1), 42);
        assert_eq!(ctx.reads, vec![LocId(1), LocId(1)]);
        assert_eq!(ctx.writes, vec![LocId(1)]);
    }

    #[test]
    fn peek_poke_bypass_instrumentation() {
        let mut ctx = CountingCtx::default();
        let a: SharedArray<f64> = SharedArray::new(&mut ctx, 2, 0.0, "a");
        a.poke(0, 3.5);
        assert_eq!(a.peek(0), 3.5);
        assert_eq!(a.snapshot(), vec![3.5, 0.0]);
        assert!(ctx.reads.is_empty());
        assert!(ctx.writes.is_empty());
    }

    #[test]
    fn var_is_single_location() {
        let mut ctx = CountingCtx::default();
        let v = SharedVar::new(&mut ctx, 1u64, "v");
        let w = SharedVar::new(&mut ctx, 2u64, "w");
        assert_ne!(v.loc(), w.loc());
        v.write(&mut ctx, 10);
        assert_eq!(v.read(&mut ctx), 10);
        assert_eq!(w.peek(), 2);
    }

    #[test]
    fn clones_alias_storage() {
        let mut ctx = CountingCtx::default();
        let a: SharedArray<u64> = SharedArray::new(&mut ctx, 1, 0, "a");
        let b = a.clone();
        a.write(&mut ctx, 0, 9);
        assert_eq!(b.read(&mut ctx, 0), 9);
        assert_eq!(b.base(), a.base());
    }

    #[test]
    fn shared_array_is_send_sync_for_copy_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedArray<f64>>();
        assert_send_sync::<SharedVar<u64>>();
    }

    #[test]
    fn word_roundtrips_every_element_type() {
        fn rt<T: Word + PartialEq + std::fmt::Debug>(vals: &[T]) {
            for &v in vals {
                assert_eq!(T::from_word(v.to_word()), v);
            }
        }
        rt(&[0u8, 1, 255]);
        rt(&[0u16, u16::MAX]);
        rt(&[0u32, u32::MAX]);
        rt(&[0u64, u64::MAX]);
        rt(&[0i32, -1, i32::MIN, i32::MAX]);
        rt(&[0i64, -1, i64::MIN, i64::MAX]);
        rt(&[0.0f64, -0.0, 1.5, f64::MIN, f64::MAX, f64::INFINITY]);
        rt(&[0.0f32, -2.25, f32::MAX]);
        rt(&[true, false]);
        // NaN round-trips bit-exactly even though NaN != NaN.
        assert!(f64::from_word(f64::NAN.to_word()).is_nan());
    }

    #[test]
    fn negative_values_survive_storage() {
        let mut ctx = CountingCtx::default();
        let a: SharedArray<i64> = SharedArray::new(&mut ctx, 1, -5, "a");
        assert_eq!(a.peek(0), -5);
        a.poke(0, i64::MIN);
        assert_eq!(a.peek(0), i64::MIN);
        let f: SharedArray<f64> = SharedArray::new(&mut ctx, 1, -0.5, "f");
        assert_eq!(f.peek(0), -0.5);
    }
}
