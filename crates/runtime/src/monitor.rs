//! Instrumentation interface between the serial executor and analyses.
//!
//! The paper instruments HJ bytecode "at async, finish and future
//! boundaries, future get operations, and also on reads and writes to shared
//! memory locations" (§5). Here the serial depth-first executor emits exactly
//! that event stream to a [`Monitor`]. The DTRG race detector, the baseline
//! detectors, the computation-graph builder, and the statistics collectors
//! are all `Monitor` implementations, which guarantees they observe
//! *identical* executions — the property the slowdown comparison relies on.
//!
//! Events arrive in serial depth-first order. In particular:
//!
//! * `task_create(p, c, kind)` is immediately followed by the entire event
//!   stream of task `c` (run-to-completion), then `task_end(c)`, then the
//!   continuation of `p`.
//! * `get(w, t)` is only emitted for *explicit* `get()` calls; the implicit
//!   joins at the end of a finish are reported via `finish_end`'s `joined`
//!   list (the paper's `F.joins`).

use futrace_util::ids::{FinishId, LocId, TaskId};

/// What kind of task a dynamic task instance is. The detector's read rule
/// (Algorithm 9) distinguishes async readers (at most one is stored per
/// location) from future readers (many may be stored).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TaskKind {
    /// The root task wrapping `main` (inside the implicit finish scope).
    Main,
    /// A task created by `async` — joinable only via its Immediately
    /// Enclosing Finish.
    Async,
    /// A task created by `future<T> = async<T>` — joinable via `get()` by
    /// any task holding its handle, and by its IEF.
    Future,
}

impl TaskKind {
    /// True for future tasks (the paper's `IsFuture`).
    #[inline]
    pub fn is_future(self) -> bool {
        matches!(self, TaskKind::Future)
    }
}

/// Receiver for the serial executor's instrumentation events.
///
/// All methods default to no-ops so analyses implement only what they need.
/// `read`/`write` are the hot path: at paper scale they fire over 10^9
/// times, so implementations should avoid allocation there.
pub trait Monitor {
    /// Task `child` of kind `kind` was created by `parent`. The child's
    /// entire execution follows immediately (depth-first order). `ief` is
    /// the child's Immediately Enclosing Finish.
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        let _ = (parent, child, kind, ief);
    }

    /// Task `task` ran to completion.
    fn task_end(&mut self, task: TaskId) {
        let _ = task;
    }

    /// Task `task` opened finish scope `finish`.
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        let _ = (task, finish);
    }

    /// Finish scope `finish` (opened by `task`) closed; `joined` lists every
    /// task whose Immediately Enclosing Finish is `finish`, i.e. the paper's
    /// `F.joins` consumed by Algorithm 6.
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        let _ = (task, finish, joined);
    }

    /// Task `waiter` performed `get()` on future task `awaited`
    /// (Algorithm 4's join event).
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        let _ = (waiter, awaited);
    }

    /// Task `task` read shared location `loc` (Algorithm 9's trigger).
    fn read(&mut self, task: TaskId, loc: LocId) {
        let _ = (task, loc);
    }

    /// Task `task` wrote shared location `loc` (Algorithm 8's trigger).
    fn write(&mut self, task: TaskId, loc: LocId) {
        let _ = (task, loc);
    }

    /// A block of `n` shared locations starting at `base` was allocated
    /// under debug `name`. Lets analyses pre-size shadow memory and report
    /// races with human-readable location names.
    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        let _ = (base, n, name);
    }
}

/// Forwarding impl so a `&mut dyn Monitor` (or `&mut M`) is itself a
/// monitor. This is what lets the benchsuite registry store non-generic
/// `fn(&mut dyn Monitor, …)` workload runners while the executor stays
/// monomorphized: the runner calls `run_serial(&mut mon, …)` with
/// `M = &mut dyn Monitor`.
impl<M: Monitor + ?Sized> Monitor for &mut M {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        (**self).task_create(parent, child, kind, ief);
    }
    fn task_end(&mut self, task: TaskId) {
        (**self).task_end(task);
    }
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        (**self).finish_start(task, finish);
    }
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        (**self).finish_end(task, finish, joined);
    }
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        (**self).get(waiter, awaited);
    }
    fn read(&mut self, task: TaskId, loc: LocId) {
        (**self).read(task, loc);
    }
    fn write(&mut self, task: TaskId, loc: LocId) {
        (**self).write(task, loc);
    }
    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        (**self).alloc(base, n, name);
    }
}

/// Monitor that ignores everything. Running the DSL under `NullMonitor`
/// measures pure DSL overhead (used by the bench harness's sanity checks).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// Fan-out monitor driving two analyses over one execution (compose
/// recursively for more). Used by tests to run the detector and the
/// computation-graph oracle side by side.
#[derive(Debug, Default)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Monitor, B: Monitor> Monitor for Pair<A, B> {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        self.0.task_create(parent, child, kind, ief);
        self.1.task_create(parent, child, kind, ief);
    }
    fn task_end(&mut self, task: TaskId) {
        self.0.task_end(task);
        self.1.task_end(task);
    }
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        self.0.finish_start(task, finish);
        self.1.finish_start(task, finish);
    }
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        self.0.finish_end(task, finish, joined);
        self.1.finish_end(task, finish, joined);
    }
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        self.0.get(waiter, awaited);
        self.1.get(waiter, awaited);
    }
    fn read(&mut self, task: TaskId, loc: LocId) {
        self.0.read(task, loc);
        self.1.read(task, loc);
    }
    fn write(&mut self, task: TaskId, loc: LocId) {
        self.0.write(task, loc);
        self.1.write(task, loc);
    }
    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        self.0.alloc(base, n, name);
        self.1.alloc(base, n, name);
    }
}

/// A recorded instrumentation event (see [`EventLog`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// Task creation.
    TaskCreate {
        /// Spawning task.
        parent: TaskId,
        /// New task.
        child: TaskId,
        /// Async vs future vs main.
        kind: TaskKind,
        /// The child's Immediately Enclosing Finish.
        ief: FinishId,
    },
    /// Task termination.
    TaskEnd(TaskId),
    /// Finish scope opened.
    FinishStart(TaskId, FinishId),
    /// Finish scope closed with its join list.
    FinishEnd(TaskId, FinishId, Vec<TaskId>),
    /// Explicit `get()`.
    Get {
        /// Task performing the get.
        waiter: TaskId,
        /// Future task being joined.
        awaited: TaskId,
    },
    /// Shared-memory read.
    Read(TaskId, LocId),
    /// Shared-memory write.
    Write(TaskId, LocId),
    /// Shared-memory allocation.
    Alloc(LocId, u32, String),
}

/// Monitor that records the whole event stream. Tests use it to assert
/// executor behaviour (ordering, IEF attribution, determinism).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// Recorded events in serial depth-first order.
    pub events: Vec<Event>,
}

impl EventLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `Read`/`Write` events (the paper's #SharedMem counter).
    pub fn shared_mem_accesses(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Read(..) | Event::Write(..)))
            .count()
    }

    /// Number of tasks created, excluding the main task (the paper's #Tasks
    /// counts dynamic tasks created).
    pub fn tasks_created(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::TaskCreate { .. }))
            .count()
    }
}

impl Monitor for EventLog {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        self.events.push(Event::TaskCreate {
            parent,
            child,
            kind,
            ief,
        });
    }
    fn task_end(&mut self, task: TaskId) {
        self.events.push(Event::TaskEnd(task));
    }
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        self.events.push(Event::FinishStart(task, finish));
    }
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        self.events
            .push(Event::FinishEnd(task, finish, joined.to_vec()));
    }
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        self.events.push(Event::Get { waiter, awaited });
    }
    fn read(&mut self, task: TaskId, loc: LocId) {
        self.events.push(Event::Read(task, loc));
    }
    fn write(&mut self, task: TaskId, loc: LocId) {
        self.events.push(Event::Write(task, loc));
    }
    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        self.events.push(Event::Alloc(base, n, name.to_string()));
    }
}

/// Dispatches one recorded event to the corresponding monitor callback.
pub fn apply<M: Monitor>(mon: &mut M, e: &Event) {
    match e {
        Event::TaskCreate {
            parent,
            child,
            kind,
            ief,
        } => mon.task_create(*parent, *child, *kind, *ief),
        Event::TaskEnd(t) => mon.task_end(*t),
        Event::FinishStart(t, f) => mon.finish_start(*t, *f),
        Event::FinishEnd(t, f, joined) => mon.finish_end(*t, *f, joined),
        Event::Get { waiter, awaited } => mon.get(*waiter, *awaited),
        Event::Read(t, l) => mon.read(*t, *l),
        Event::Write(t, l) => mon.write(*t, *l),
        Event::Alloc(base, n, name) => mon.alloc(*base, *n, name),
    }
}

/// Replays a recorded event stream into another monitor — trace-based
/// analysis: record once with [`EventLog`], then drive any detector or
/// graph builder offline (the paper's detector is a pure function of this
/// stream, so replaying reproduces its verdict exactly).
pub fn replay<M: Monitor>(events: &[Event], mon: &mut M) {
    for e in events {
        apply(mon, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_kind_is_future() {
        assert!(TaskKind::Future.is_future());
        assert!(!TaskKind::Async.is_future());
        assert!(!TaskKind::Main.is_future());
    }

    #[test]
    fn pair_fans_out() {
        let mut pair = Pair(EventLog::new(), EventLog::new());
        pair.read(TaskId(1), LocId(2));
        pair.write(TaskId(1), LocId(2));
        pair.get(TaskId(3), TaskId(1));
        assert_eq!(pair.0.events, pair.1.events);
        assert_eq!(pair.0.events.len(), 3);
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let mut original = EventLog::new();
        original.task_create(TaskId(0), TaskId(1), TaskKind::Future, FinishId(0));
        original.alloc(LocId(0), 4, "arr");
        original.write(TaskId(1), LocId(2));
        original.task_end(TaskId(1));
        original.get(TaskId(0), TaskId(1));
        original.finish_end(TaskId(0), FinishId(0), &[TaskId(1)]);

        let mut copy = EventLog::new();
        replay(&original.events, &mut copy);
        assert_eq!(copy.events, original.events);
    }

    #[test]
    fn mut_ref_monitor_forwards() {
        // Drive a generic consumer with `M = &mut dyn Monitor` — the
        // shape the benchsuite registry relies on.
        fn drive<M: Monitor>(mon: &mut M) {
            mon.write(TaskId(1), LocId(0));
            mon.get(TaskId(2), TaskId(1));
        }
        let mut log = EventLog::new();
        {
            let mut dyn_ref: &mut dyn Monitor = &mut log;
            drive(&mut dyn_ref);
        }
        assert_eq!(
            log.events,
            vec![
                Event::Write(TaskId(1), LocId(0)),
                Event::Get {
                    waiter: TaskId(2),
                    awaited: TaskId(1)
                }
            ]
        );
    }

    #[test]
    fn event_log_counters() {
        let mut log = EventLog::new();
        log.task_create(TaskId(0), TaskId(1), TaskKind::Async, FinishId(0));
        log.read(TaskId(1), LocId(0));
        log.write(TaskId(1), LocId(0));
        log.task_end(TaskId(1));
        assert_eq!(log.shared_mem_accesses(), 2);
        assert_eq!(log.tasks_created(), 1);
    }
}
