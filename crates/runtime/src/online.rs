//! Online parallel race detection: instrumented work-stealing execution.
//!
//! Every other analysis mode in this repository pays for detection with
//! serial execution: the program runs in the serial-elision order and the
//! detector consumes its event stream in-line. This module removes that
//! floor. The program executes on [`crate::parallel`]'s work-stealing pool
//! while detection happens *concurrently* on a set of detector shard
//! threads — execution and analysis overlap, and check cost amortizes over
//! all cores.
//!
//! The pipeline has three moving parts:
//!
//! 1. **Per-task access buffers** ([`TaskRec`], package-private). Each
//!    running task appends its shared-memory accesses to a thread-local
//!    buffer (one packed `u64` per access) and publishes the buffer into
//!    its [`TaskSlot`] at the synchronization points the scheduler already
//!    exposes — spawn, future `get`, `finish` entry/exit, task end — plus a
//!    size threshold, so no lock is touched on the access hot path.
//! 2. **The canonical walker** (one thread). Detection order must be the
//!    serial-elision order — the paper's detector (§4.1) is only sound and
//!    precise for it. The walker reconstructs exactly that order from the
//!    published buffers: it performs a depth-first traversal of the fork
//!    tree (spawned child first, then the parent's remaining actions),
//!    renumbers raw task/finish/location ids into the serial numbering,
//!    and routes the resulting canonical stream to detector shards. When a
//!    task's next action has not been published yet the walker blocks on
//!    that *frontier* — execution is always ahead of (or equal to) the
//!    walk, never behind it, so no access can be dropped: a buffered
//!    access is either already published or will be published at the
//!    task's next sync point, and every task ends with a final publish.
//!    [`crate::labels`] fork-path labels, maintained O(1) at spawn,
//!    certify the walk order: serial ids must be monotone in label
//!    depth-first order (debug-asserted per spawn).
//! 3. **Detector shards** (N threads) behind the [`ParMonitor`] trait.
//!    `Monitor` takes `&mut self` and cannot be driven from N workers;
//!    `ParMonitor` is the concurrency-capable surface: `fork` splits the
//!    monitor into per-worker state, the walker routes each access to one
//!    worker (broadcasting control events to all), and `merge`
//!    deterministically folds the workers back into a single report. The
//!    blanket adapter [`Serialized`] lifts every existing `Monitor`
//!    unchanged (one worker, canonical order = serial-elision order).
//!
//! Because the canonical stream is, for programs whose control flow does
//! not depend on racy values (all benchsuite and random-program families —
//! their task structure is data-independent), *byte-identical* to the
//! stream a serial run would produce, the merged verdict is byte-identical
//! to the serial detector's — the same guarantee the offline shard
//! pipeline proves, reached during a parallel execution.

use crate::engine::EngineCounters;
use crate::labels::TaskLabel;
use crate::monitor::{Event, Monitor, TaskKind};
use crate::parallel::{run_pool, DeadlockError, ParCtx, PoolOutcome};
use crate::sync::{Condvar, Mutex};
use futrace_util::ids::{FinishId, LocId, TaskId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accesses buffered per task before a forced publish.
const FLUSH_ACCESSES: usize = 4096;
/// Canonical ops per batch handed to a detector shard.
const BATCH_OPS: usize = 4096;
/// Batches a shard queue buffers before the walker blocks (backpressure).
const QUEUE_CAP: usize = 8;

// ---------------------------------------------------------------------------
// ParMonitor: the concurrency-capable monitor surface
// ---------------------------------------------------------------------------

/// A monitor that can be driven from multiple detector shard threads.
///
/// [`crate::monitor::Monitor`] takes `&mut self` on every callback and so
/// can only be driven by one thread. `ParMonitor` is the parallel
/// counterpart used by [`run_online`]: the monitor *forks* into per-worker
/// state, each worker consumes its routed slice of the canonical event
/// stream on its own thread, and a deterministic *merge* folds the workers
/// back into one report.
///
/// The contract mirrors the offline shard pipeline's (and is what makes
/// merged verdicts deterministic):
///
/// * every worker receives **all control events** (task/finish/get
///   structure) in canonical order;
/// * each access is routed to **exactly one** worker by [`ParMonitor::route`]
///   (default: `loc % workers`), tagged with its global canonical index;
/// * `merge` must not depend on inter-worker timing — workers are handed
///   back in fork order and each worker's input is a deterministic
///   function of the canonical stream.
///
/// `control` and `check` are associated functions (not `&self` methods) so
/// workers can be moved to shard threads without borrowing the monitor.
///
/// Every existing serial [`Monitor`] participates unchanged through the
/// [`Serialized`] adapter.
pub trait ParMonitor: Sized {
    /// Per-shard worker state, moved onto a shard thread.
    type Worker: Send;
    /// The merged result type.
    type Report;

    /// Splits the monitor into worker states. `workers` is the requested
    /// shard count; implementations may return a different number (the
    /// returned length is authoritative) but must return at least one.
    fn fork(&mut self, workers: usize) -> Vec<Self::Worker>;

    /// Routes an access on `loc` to a worker index in `0..workers`.
    /// Must be a pure function of `(loc, workers)` (an associated function,
    /// like `control`/`check`, so the walker thread needs no monitor
    /// borrow).
    fn route(loc: LocId, workers: usize) -> usize {
        loc.index() % workers.max(1)
    }

    /// Applies one canonical control event to a worker. Called on every
    /// worker for every control event, in canonical order.
    fn control(worker: &mut Self::Worker, e: &Event);

    /// Checks one routed access. `index` is the access's position in the
    /// global canonical access stream (shared across workers).
    fn check(worker: &mut Self::Worker, task: TaskId, loc: LocId, write: bool, index: u64);

    /// Deterministically folds the workers (in fork order) into a report.
    fn merge(self, workers: Vec<Self::Worker>) -> Self::Report;
}

/// Blanket adapter driving any serial [`Monitor`] as a [`ParMonitor`].
///
/// Forks into exactly one worker — the monitor itself — which receives
/// the full canonical stream in order. Since the canonical stream is the
/// serial-elision stream, the monitor observes exactly what it would have
/// observed under [`crate::serial::run_serial`].
pub struct Serialized<M>(Option<M>);

impl<M> Serialized<M> {
    /// Wraps a serial monitor for online driving.
    pub fn new(mon: M) -> Self {
        Serialized(Some(mon))
    }
}

impl<M: Monitor + Send> ParMonitor for Serialized<M> {
    type Worker = M;
    type Report = M;

    fn fork(&mut self, _workers: usize) -> Vec<M> {
        vec![self.0.take().expect("Serialized monitor forked twice")]
    }

    fn control(worker: &mut M, e: &Event) {
        crate::monitor::apply(worker, e);
    }

    fn check(worker: &mut M, task: TaskId, loc: LocId, write: bool, _index: u64) {
        if write {
            worker.write(task, loc);
        } else {
            worker.read(task, loc);
        }
    }

    fn merge(self, workers: Vec<M>) -> M {
        workers
            .into_iter()
            .next()
            .expect("Serialized monitor has one worker")
    }
}

// ---------------------------------------------------------------------------
// Recording side: per-task buffers published into slots
// ---------------------------------------------------------------------------

/// A control action recorded in a task's buffer. Offsets into the task's
/// access stream (see [`Published`]) fix its interleaving position.
pub(crate) enum Control {
    /// Spawned a child task (`async` or `future`).
    Spawn { child: u32, kind: TaskKind },
    /// Entered a `finish` scope.
    FinishStart,
    /// Left a `finish` scope (after its join completed).
    FinishEnd,
    /// Performed `get()` on the future computed by raw task `awaited`.
    Get { awaited: u32 },
    /// Allocated `n` cells at raw base `base`.
    Alloc { base: u32, n: u32, name: Box<str> },
}

/// Buffered actions published by a task, drained by the walker. Each
/// control carries the count of the task's accesses preceding it, so the
/// walker can interleave the two streams exactly as they happened.
#[derive(Default)]
struct Published {
    /// Packed accesses: `loc << 1 | is_write`.
    accesses: Vec<u64>,
    /// `(access_offset, control)` pairs in program order.
    controls: Vec<(u64, Control)>,
}

/// Shared mailbox between one running task and the walker.
pub(crate) struct TaskSlot {
    data: Mutex<Published>,
    /// Set (after the final publish) when the task body has returned.
    ended: AtomicBool,
    /// The task's fork-path label, fixed at spawn.
    label: TaskLabel,
}

/// Shared state of one online run: the slot table plus publish/wake
/// plumbing. Owned by [`run_online`], referenced by every [`TaskRec`].
pub(crate) struct OnlineState {
    /// Raw task id → slot. Raw ids are dense (allocated by `fetch_add`).
    slots: Mutex<Vec<Option<Arc<TaskSlot>>>>,
    /// Bumped on every publish; the walker waits on it at the frontier.
    wake: Mutex<u64>,
    wake_cv: Condvar,
    aborted: AtomicBool,
    publishes: AtomicU64,
    published_events: AtomicU64,
}

impl OnlineState {
    fn new() -> OnlineState {
        OnlineState {
            slots: Mutex::new(Vec::new()),
            wake: Mutex::new(0),
            wake_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            publishes: AtomicU64::new(0),
            published_events: AtomicU64::new(0),
        }
    }

    pub(crate) fn register(&self, raw: u32, label: TaskLabel) -> Arc<TaskSlot> {
        let slot = Arc::new(TaskSlot {
            data: Mutex::new(Published::default()),
            ended: AtomicBool::new(false),
            label,
        });
        let mut slots = self.slots.lock();
        let idx = raw as usize;
        if slots.len() <= idx {
            slots.resize(idx + 1, None);
        }
        slots[idx] = Some(Arc::clone(&slot));
        slot
    }

    fn slot(&self, raw: u32) -> Option<Arc<TaskSlot>> {
        self.slots.lock().get(raw as usize).cloned().flatten()
    }

    fn notify(&self) {
        *self.wake.lock() += 1;
        self.wake_cv.notify_all();
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.notify();
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }
}

/// Everything a spawned child needs to start recording: created by the
/// parent *before* the spawn control is published, so the walker always
/// finds the child's slot when it reaches the spawn.
pub(crate) struct SpawnRec {
    state: Arc<OnlineState>,
    slot: Arc<TaskSlot>,
    label: TaskLabel,
}

/// Per-running-task recorder: local buffers plus the publish protocol.
/// Lives inside [`ParCtx`] when (and only when) the run is online.
pub(crate) struct TaskRec {
    state: Arc<OnlineState>,
    slot: Arc<TaskSlot>,
    label: TaskLabel,
    /// Spawn ordinal of this task's next child (fork-path label `seq`).
    next_child_seq: u32,
    accesses: Vec<u64>,
    controls: Vec<(u64, Control)>,
    /// Total accesses recorded by this task (absolute offset counter).
    acc_count: u64,
}

impl TaskRec {
    /// Recorder for the main task (registers raw id 0, root label).
    pub(crate) fn main(state: Arc<OnlineState>) -> TaskRec {
        let label = TaskLabel::root();
        let slot = state.register(0, label.clone());
        TaskRec {
            state,
            slot,
            label,
            next_child_seq: 0,
            accesses: Vec::new(),
            controls: Vec::new(),
            acc_count: 0,
        }
    }

    /// Recorder for a spawned child (slot already registered by the
    /// parent's [`TaskRec::record_spawn`]).
    pub(crate) fn spawned(pre: SpawnRec) -> TaskRec {
        TaskRec {
            state: pre.state,
            slot: pre.slot,
            label: pre.label,
            next_child_seq: 0,
            accesses: Vec::new(),
            controls: Vec::new(),
            acc_count: 0,
        }
    }

    /// The task's fork-path label.
    pub(crate) fn label(&self) -> &TaskLabel {
        &self.label
    }

    /// Records one shared-memory access. Hot path: two `Vec` pushes worst
    /// case, no locks until the flush threshold.
    #[inline]
    pub(crate) fn record_access(&mut self, loc: LocId, write: bool) {
        self.accesses.push(((loc.0 as u64) << 1) | write as u64);
        self.acc_count += 1;
        if self.accesses.len() >= FLUSH_ACCESSES {
            self.publish();
        }
    }

    /// Registers the child's slot (with its O(1)-derived label) and
    /// records + publishes the spawn control. Returns the bundle the child
    /// task starts from.
    pub(crate) fn record_spawn(&mut self, child: u32, kind: TaskKind) -> SpawnRec {
        let label = self.label.child(self.next_child_seq);
        self.next_child_seq += 1;
        let slot = self.state.register(child, label.clone());
        self.record_control(Control::Spawn { child, kind });
        SpawnRec {
            state: Arc::clone(&self.state),
            slot,
            label,
        }
    }

    /// Records + publishes a `get()` of raw task `awaited`.
    pub(crate) fn record_get(&mut self, awaited: u32) {
        self.record_control(Control::Get { awaited });
    }

    /// Records + publishes entry into a `finish` scope.
    pub(crate) fn record_finish_start(&mut self) {
        self.record_control(Control::FinishStart);
    }

    /// Records + publishes exit from a `finish` scope.
    pub(crate) fn record_finish_end(&mut self) {
        self.record_control(Control::FinishEnd);
    }

    /// Records + publishes an allocation of `n` cells at raw `base`.
    pub(crate) fn record_alloc(&mut self, base: u32, n: u32, name: &str) {
        self.record_control(Control::Alloc {
            base,
            n,
            name: name.into(),
        });
    }

    fn record_control(&mut self, c: Control) {
        self.controls.push((self.acc_count, c));
        // Publishing at every sync point keeps the walker's frontier as
        // close to execution as the semantics allow (a spawn must be
        // visible before the child's actions can matter).
        self.publish();
    }

    fn publish(&mut self) {
        if self.accesses.is_empty() && self.controls.is_empty() {
            return;
        }
        let n = (self.accesses.len() + self.controls.len()) as u64;
        {
            let mut d = self.slot.data.lock();
            d.accesses.append(&mut self.accesses);
            d.controls.append(&mut self.controls);
        }
        self.state.publishes.fetch_add(1, Ordering::Relaxed);
        self.state.published_events.fetch_add(n, Ordering::Relaxed);
        self.state.notify();
    }

    /// Final publish + end mark. Must be the task's last recording action.
    pub(crate) fn end(&mut self) {
        self.publish();
        self.slot.ended.store(true, Ordering::SeqCst);
        self.state.notify();
    }
}

// ---------------------------------------------------------------------------
// Shard queues: walker -> detector worker hand-off
// ---------------------------------------------------------------------------

/// One canonical-stream operation routed to a shard. Controls are boxed
/// so the Vec slot stays at the (dominant) access variant's size — the
/// queues move tens of millions of accesses and only thousands of
/// controls.
enum ShardOp {
    /// Broadcast control event (every shard sees these).
    Control(Box<Event>),
    /// A routed access with its global canonical index.
    Access {
        task: TaskId,
        loc: LocId,
        write: bool,
        index: u64,
    },
}

struct ShardQueueState {
    batches: VecDeque<Vec<ShardOp>>,
    eof: bool,
    dead: bool,
}

/// Bounded SPSC batch queue between the walker and one shard worker.
struct ShardQueue {
    state: Mutex<ShardQueueState>,
    can_push: Condvar,
    can_pop: Condvar,
}

impl ShardQueue {
    fn new() -> ShardQueue {
        ShardQueue {
            state: Mutex::new(ShardQueueState {
                batches: VecDeque::new(),
                eof: false,
                dead: false,
            }),
            can_push: Condvar::new(),
            can_pop: Condvar::new(),
        }
    }

    /// Blocking bounded push; returns false if the consumer died.
    fn push(&self, batch: Vec<ShardOp>) -> bool {
        let mut g = self.state.lock();
        while g.batches.len() >= QUEUE_CAP && !g.dead {
            g = self.can_push.wait(g);
        }
        if g.dead {
            return false;
        }
        g.batches.push_back(batch);
        drop(g);
        self.can_pop.notify_one();
        true
    }

    /// Marks the stream complete (consumer drains what remains, then stops).
    fn close(&self) {
        self.state.lock().eof = true;
        self.can_pop.notify_all();
    }

    /// Tears the queue down from either side (panic paths).
    fn kill(&self) {
        let mut g = self.state.lock();
        g.dead = true;
        drop(g);
        self.can_push.notify_all();
        self.can_pop.notify_all();
    }

    fn pop(&self) -> Option<Vec<ShardOp>> {
        let mut g = self.state.lock();
        loop {
            if let Some(b) = g.batches.pop_front() {
                drop(g);
                self.can_push.notify_one();
                return Some(b);
            }
            if g.eof || g.dead {
                return None;
            }
            g = self.can_pop.wait(g);
        }
    }
}

/// Kills a set of queues on drop unless disarmed — keeps a panicking
/// walker or shard from leaving its peer blocked forever.
struct QueueGuard<'a> {
    queues: &'a [Arc<ShardQueue>],
    armed: bool,
}

impl Drop for QueueGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            for q in self.queues {
                q.kill();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The canonical walker
// ---------------------------------------------------------------------------

/// A task being walked: its drained buffers plus the walk cursor.
struct Frame {
    serial: TaskId,
    slot: Arc<TaskSlot>,
    /// Drained accesses; `acc[i]` is the task's `acc_base + i`-th access.
    acc: Vec<u64>,
    acc_base: u64,
    /// Absolute count of accesses already emitted.
    acc_pos: u64,
    /// Drained, not-yet-consumed controls.
    ctls: VecDeque<(u64, Control)>,
    /// The task body has returned (everything is published).
    saw_end: bool,
}

impl Frame {
    fn acc_avail(&self) -> u64 {
        self.acc_base + self.acc.len() as u64
    }
}

struct FinishFrame {
    id: FinishId,
    joins: Vec<TaskId>,
}

/// What the walker produced (engine counters + telemetry deltas).
struct WalkResult {
    events: u64,
    control_events: u64,
    reads: u64,
    writes: u64,
    tasks_walked: u64,
    frontier_waits: u64,
    unresolved_gets: u64,
    batches: u64,
    per_shard_accesses: Vec<u64>,
    truncated: bool,
}

enum Step {
    Emitted,
    NeedData,
    TaskDone,
}

/// Where the walker sends the canonical stream.
enum Sink<'a, P: ParMonitor> {
    /// Batch and route to shard worker threads (the overlapped pipeline).
    Queues {
        queues: &'a [Arc<ShardQueue>],
        staging: Vec<Vec<ShardOp>>,
    },
    /// Feed one worker directly on the walker thread. Chosen when no
    /// spare core exists for a shard thread to run on: the hand-off
    /// could not overlap with anything, so materializing and queueing
    /// ops would be pure overhead.
    Inline(P::Worker),
}

struct Walker<'a, P: ParMonitor> {
    state: &'a OnlineState,
    sink: Sink<'a, P>,
    shards: usize,
    stack: Vec<Frame>,
    finish_stack: Vec<FinishFrame>,
    next_task: u32,
    next_finish: u32,
    next_loc: u32,
    /// Raw task id → serial id, filled as spawns are walked.
    task_map: Vec<Option<TaskId>>,
    /// Raw loc → serial loc, filled as allocs are walked.
    loc_map: Vec<u32>,
    next_access_index: u64,
    /// Label of the most recently walked spawn (order verification).
    last_spawn_label: Option<TaskLabel>,
    out: WalkResult,
}

impl<'a, P: ParMonitor> Walker<'a, P> {
    fn new(state: &'a OnlineState, sink: Sink<'a, P>, shards: usize) -> Self {
        Walker {
            state,
            sink,
            shards,
            stack: Vec::new(),
            finish_stack: vec![FinishFrame {
                id: FinishId(0),
                joins: Vec::new(),
            }],
            next_task: 1,
            next_finish: 1,
            next_loc: 0,
            task_map: vec![Some(TaskId::MAIN)],
            loc_map: Vec::new(),
            next_access_index: 0,
            last_spawn_label: None,
            out: WalkResult {
                events: 0,
                control_events: 0,
                reads: 0,
                writes: 0,
                tasks_walked: 0,
                frontier_waits: 0,
                unresolved_gets: 0,
                batches: 0,
                per_shard_accesses: vec![0; shards],
                truncated: false,
            },
        }
    }

    /// Walks to completion; returns the counters and, in inline mode,
    /// the fed worker.
    fn run(mut self) -> (WalkResult, Option<P::Worker>) {
        // The main slot is registered before user code runs; wait for it.
        let root = loop {
            if let Some(s) = self.state.slot(0) {
                break s;
            }
            if self.state.is_aborted() {
                self.out.truncated = true;
                return self.finish_streams();
            }
            let g = self.state.wake.lock();
            drop(self.state.wake_cv.wait_timeout(g, Duration::from_micros(200)));
        };
        self.stack.push(Frame {
            serial: TaskId::MAIN,
            slot: root,
            acc: Vec::new(),
            acc_base: 0,
            acc_pos: 0,
            ctls: VecDeque::new(),
            saw_end: false,
        });

        'walk: while !self.stack.is_empty() {
            if self.state.is_aborted() {
                self.out.truncated = true;
                break 'walk;
            }
            let wake_seen = *self.state.wake.lock();
            Self::drain(self.stack.last_mut().expect("non-empty stack"));
            loop {
                match self.step() {
                    Step::Emitted => continue,
                    Step::TaskDone => {
                        if self.stack.is_empty() {
                            break 'walk;
                        }
                        // Parent resumes: drain it before deciding to wait.
                        Self::drain(self.stack.last_mut().expect("parent frame"));
                    }
                    Step::NeedData => {
                        // The top frame is often a freshly pushed child
                        // whose published actions have not been drained
                        // yet; sleeping here would turn every spawn into
                        // a condvar timeout once execution has finished.
                        // Only wait when a drain finds nothing new.
                        if !Self::drain(self.stack.last_mut().expect("non-empty stack")) {
                            break;
                        }
                    }
                }
            }
            if self.stack.is_empty() {
                break;
            }
            // Frontier: nothing consumable. Sleep until a publish (or
            // timeout — publishes can land between our wake snapshot and
            // the drain above, which the snapshot comparison catches).
            let g = self.state.wake.lock();
            if *g == wake_seen && !self.state.is_aborted() {
                self.out.frontier_waits += 1;
                drop(self.state.wake_cv.wait_timeout(g, Duration::from_micros(200)));
            }
        }
        self.finish_streams()
    }

    /// Moves newly published data from the slot into the frame. Returns
    /// whether anything new arrived (data or the end mark) — `false`
    /// means the frame is genuinely ahead of execution and the walker
    /// must wait for a publish.
    fn drain(frame: &mut Frame) -> bool {
        let ended = frame.slot.ended.load(Ordering::SeqCst);
        let mut changed = false;
        let mut d = frame.slot.data.lock();
        if !d.accesses.is_empty() {
            // Drop the consumed prefix when fully caught up, keeping frame
            // memory proportional to the walk lag rather than task length.
            if frame.acc_pos == frame.acc_avail() {
                frame.acc.clear();
                frame.acc_base = frame.acc_pos;
            }
            frame.acc.append(&mut d.accesses);
            changed = true;
        }
        if !d.controls.is_empty() {
            frame.ctls.extend(d.controls.drain(..));
            changed = true;
        }
        drop(d);
        if ended && !frame.saw_end {
            // Ordering: `ended` is stored after the final publish, so
            // sampling it *before* the drain above means the drain saw
            // everything when `ended` reads true.
            frame.saw_end = true;
            changed = true;
        }
        changed
    }

    /// Consumes the next walkable unit of the top frame.
    fn step(&mut self) -> Step {
        let mut frame = self.stack.pop().expect("step on empty stack");
        if let Some((off, _)) = frame.ctls.front() {
            let off = *off;
            debug_assert!(off >= frame.acc_pos, "control offset behind walk cursor");
            if frame.acc_avail() < off {
                // Accesses preceding the control not yet drained (cannot
                // happen with atomic publishes, but stay defensive).
                self.stack.push(frame);
                return Step::NeedData;
            }
            self.emit_accesses(&mut frame, off);
            let (_, ctl) = frame.ctls.pop_front().expect("front checked");
            self.handle_control(frame, ctl)
        } else {
            let avail = frame.acc_avail();
            if frame.acc_pos < avail {
                self.emit_accesses(&mut frame, avail);
                self.stack.push(frame);
                Step::Emitted
            } else if frame.saw_end {
                self.finish_task(frame);
                Step::TaskDone
            } else {
                self.stack.push(frame);
                Step::NeedData
            }
        }
    }

    /// Handles one control action of `frame`; pushes frames back as needed.
    fn handle_control(&mut self, frame: Frame, ctl: Control) -> Step {
        match ctl {
            Control::Spawn { child, kind } => {
                let serial_child = TaskId(self.next_task);
                self.next_task += 1;
                let idx = child as usize;
                if self.task_map.len() <= idx {
                    self.task_map.resize(idx + 1, None);
                }
                self.task_map[idx] = Some(serial_child);
                let fin = self.finish_stack.last_mut().expect("finish stack");
                fin.joins.push(serial_child);
                let ief = fin.id;
                let slot = self
                    .state
                    .slot(child)
                    .expect("child slot registered before its spawn was published");
                // Labels certify the canonical order: serial ids must be
                // assigned in label depth-first order.
                debug_assert!(
                    self.last_spawn_label
                        .as_ref()
                        .is_none_or(|prev| prev.df_cmp(&slot.label).is_lt()),
                    "walk order diverged from label depth-first order"
                );
                self.last_spawn_label = Some(slot.label.clone());
                self.emit_control(Event::TaskCreate {
                    parent: frame.serial,
                    child: serial_child,
                    kind,
                    ief,
                });
                // Depth-first: the child's whole subtree walks before the
                // parent's remaining actions (serial elision).
                self.stack.push(frame);
                self.stack.push(Frame {
                    serial: serial_child,
                    slot,
                    acc: Vec::new(),
                    acc_base: 0,
                    acc_pos: 0,
                    ctls: VecDeque::new(),
                    saw_end: false,
                });
                Step::Emitted
            }
            Control::FinishStart => {
                let fid = FinishId(self.next_finish);
                self.next_finish += 1;
                self.emit_control(Event::FinishStart(frame.serial, fid));
                self.finish_stack.push(FinishFrame {
                    id: fid,
                    joins: Vec::new(),
                });
                self.stack.push(frame);
                Step::Emitted
            }
            Control::FinishEnd => {
                let fin = self.finish_stack.pop().expect("unbalanced finish_end");
                self.emit_control(Event::FinishEnd(frame.serial, fin.id, fin.joins));
                self.stack.push(frame);
                Step::Emitted
            }
            Control::Get { awaited } => {
                match self.task_map.get(awaited as usize).copied().flatten() {
                    Some(serial_awaited) => self.emit_control(Event::Get {
                        waiter: frame.serial,
                        awaited: serial_awaited,
                    }),
                    // A handle that reached this task outside the monitored
                    // structure (e.g. through a raw channel): no serial id
                    // exists at this canonical position. Counted, skipped —
                    // such programs are outside the serial-elision model.
                    None => self.out.unresolved_gets += 1,
                }
                self.stack.push(frame);
                Step::Emitted
            }
            Control::Alloc { base, n, name } => {
                let serial_base = self.next_loc;
                self.next_loc += n;
                let end = base as usize + n as usize;
                if self.loc_map.len() < end {
                    self.loc_map.resize(end, u32::MAX);
                }
                for i in 0..n {
                    self.loc_map[base as usize + i as usize] = serial_base + i;
                }
                self.emit_control(Event::Alloc(LocId(serial_base), n, name.into()));
                self.stack.push(frame);
                Step::Emitted
            }
        }
    }

    fn finish_task(&mut self, frame: Frame) {
        debug_assert!(
            frame.ctls.is_empty() && frame.acc_pos == frame.acc_avail(),
            "finishing a task with unconsumed actions"
        );
        if frame.serial == TaskId::MAIN {
            // The implicit finish around main, exactly as run_serial ends.
            let fin = self.finish_stack.pop().expect("implicit finish frame");
            self.emit_control(Event::FinishEnd(TaskId::MAIN, fin.id, fin.joins));
        }
        self.emit_control(Event::TaskEnd(frame.serial));
        self.out.tasks_walked += 1;
    }

    fn emit_control(&mut self, e: Event) {
        self.out.events += 1;
        self.out.control_events += 1;
        match &mut self.sink {
            Sink::Inline(w) => P::control(w, &e),
            Sink::Queues { queues, staging } => {
                for s in 0..staging.len() {
                    staging[s].push(ShardOp::Control(Box::new(e.clone())));
                    if staging[s].len() >= BATCH_OPS {
                        Self::flush(queues, staging, &mut self.out.batches, s);
                    }
                }
            }
        }
    }

    fn emit_accesses(&mut self, frame: &mut Frame, upto: u64) {
        for i in frame.acc_pos..upto {
            let word = frame.acc[(i - frame.acc_base) as usize];
            let raw_loc = (word >> 1) as u32;
            let write = word & 1 == 1;
            let loc = LocId(self.translate_loc(raw_loc));
            let index = self.next_access_index;
            self.next_access_index += 1;
            self.out.events += 1;
            if write {
                self.out.writes += 1;
            } else {
                self.out.reads += 1;
            }
            let shard = P::route(loc, self.shards).min(self.shards - 1);
            self.out.per_shard_accesses[shard] += 1;
            match &mut self.sink {
                Sink::Inline(w) => P::check(w, frame.serial, loc, write, index),
                Sink::Queues { queues, staging } => {
                    staging[shard].push(ShardOp::Access {
                        task: frame.serial,
                        loc,
                        write,
                        index,
                    });
                    if staging[shard].len() >= BATCH_OPS {
                        Self::flush(queues, staging, &mut self.out.batches, shard);
                    }
                }
            }
        }
        frame.acc_pos = upto;
    }

    fn translate_loc(&self, raw: u32) -> u32 {
        match self.loc_map.get(raw as usize) {
            Some(&serial) if serial != u32::MAX => serial,
            // Accesses outside any monitored allocation cannot occur
            // through the DSL; identity-map defensively in release.
            _ => {
                debug_assert!(false, "access to unallocated raw loc {raw}");
                raw
            }
        }
    }

    fn flush(
        queues: &[Arc<ShardQueue>],
        staging: &mut [Vec<ShardOp>],
        batches: &mut u64,
        shard: usize,
    ) {
        let batch = std::mem::replace(&mut staging[shard], Vec::with_capacity(BATCH_OPS));
        if batch.is_empty() {
            return;
        }
        *batches += 1;
        // A false return means the shard died (panicked); its join will
        // surface the payload — drop the batch and keep walking.
        let _ = queues[shard].push(batch);
    }

    fn finish_streams(mut self) -> (WalkResult, Option<P::Worker>) {
        match self.sink {
            Sink::Inline(w) => (self.out, Some(w)),
            Sink::Queues { queues, mut staging } => {
                for s in 0..queues.len() {
                    Self::flush(queues, &mut staging, &mut self.out.batches, s);
                    queues[s].close();
                }
                (self.out, None)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The online driver
// ---------------------------------------------------------------------------

/// Options for [`run_online`].
#[derive(Clone, Debug)]
pub struct OnlineOptions {
    /// Worker threads for the parallel executor (≥ 1).
    pub threads: usize,
    /// Detector shard threads requested from [`ParMonitor::fork`].
    pub shards: usize,
    /// Seed for randomized steal order (schedule exploration); `None`
    /// keeps FIFO stealing.
    pub steal_seed: Option<u64>,
}

impl OnlineOptions {
    /// `threads` executor threads with one detector shard per thread.
    pub fn threads(threads: usize) -> OnlineOptions {
        OnlineOptions {
            threads,
            shards: threads,
            steal_seed: None,
        }
    }

    /// `threads` executor threads with the shard count fitted to the
    /// machine: shards compete with the executor and the walker for
    /// cores, so extra shards only help when spare cores exist to run
    /// them. On a saturated (or single-core) host this picks one shard —
    /// the pipeline still overlaps detection with execution, it just
    /// stops paying for cross-shard scheduling it cannot use.
    pub fn auto(threads: usize) -> OnlineOptions {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shards = avail.saturating_sub(threads + 1).clamp(1, threads);
        OnlineOptions {
            threads,
            shards,
            steal_seed: None,
        }
    }
}

/// Telemetry from one online run: buffer/merge behaviour of the pipeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineStats {
    /// Executor worker threads.
    pub threads: usize,
    /// Detector shard workers actually forked.
    pub shards: usize,
    /// Buffer publishes (merges into task slots) across all tasks.
    pub publishes: u64,
    /// Actions moved by those publishes (accesses + controls).
    pub published_events: u64,
    /// Tasks fully walked in canonical order.
    pub tasks_walked: u64,
    /// Times the walker blocked waiting for execution to publish more.
    pub frontier_waits: u64,
    /// `get()`s whose awaited handle had no serial id at its canonical
    /// position (handle smuggled outside the monitored structure).
    pub unresolved_gets: u64,
    /// Batches handed to detector shards.
    pub batches: u64,
    /// Accesses routed to each shard.
    pub per_shard_accesses: Vec<u64>,
    /// The canonical stream was cut short (deadlock or panic).
    pub truncated: bool,
}

impl std::fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "online: threads={} shards={} publishes={} published={} \
             frontier_waits={} batches={}",
            self.threads,
            self.shards,
            self.publishes,
            self.published_events,
            self.frontier_waits,
            self.batches
        )?;
        if self.unresolved_gets > 0 {
            write!(f, " unresolved_gets={}", self.unresolved_gets)?;
        }
        if self.truncated {
            write!(f, " (truncated)")?;
        }
        Ok(())
    }
}

/// Why an online execution failed (analysis of the prefix still ran).
#[derive(Debug)]
pub enum OnlineError {
    /// The parallel execution deadlocked (Appendix-A scenario).
    Deadlock(DeadlockError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::Deadlock(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Result of [`run_online`]: the program's value, the merged report, and
/// run telemetry. `report` is present even when `result` is an error —
/// detection of the executed prefix still completed.
pub struct OnlineRun<R, Rep> {
    /// The program's return value, or why execution failed.
    pub result: Result<R, OnlineError>,
    /// The merged [`ParMonitor`] report.
    pub report: Rep,
    /// Canonical-stream counters (events, control, reads, writes, wall).
    pub engine: EngineCounters,
    /// Online-pipeline telemetry.
    pub stats: OnlineStats,
}

/// Runs `f` on the instrumented parallel executor with detection overlapped
/// on shard threads. See the module docs for the pipeline.
///
/// Thread budget: `opts.threads` executor workers + 1 canonical walker +
/// `opts.shards` detector shards (plus any compensation workers the pool
/// adds while waits are blocked).
///
/// Panics from task bodies are propagated to the caller after all
/// pipeline threads have been joined.
pub fn run_online<P, R, F>(opts: OnlineOptions, mut monitor: P, f: F) -> OnlineRun<R, P::Report>
where
    P: ParMonitor,
    R: Send,
    F: FnOnce(&mut ParCtx) -> R + Send,
{
    assert!(opts.threads >= 1, "need at least one executor thread");
    let start = Instant::now();
    let mut workers = monitor.fork(opts.shards.max(1));
    assert!(!workers.is_empty(), "ParMonitor::fork returned no workers");
    let shards = workers.len();
    let state = Arc::new(OnlineState::new());
    // With a single shard and no spare core to run it on, a shard thread
    // cannot overlap with the walker — feed the worker inline on the
    // walker thread instead of materializing ops through a queue.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let inline_worker = (shards == 1 && avail <= 2).then(|| workers.remove(0));
    let queues: Vec<Arc<ShardQueue>> = (0..workers.len())
        .map(|_| Arc::new(ShardQueue::new()))
        .collect();

    let (pool_out, walk_join, shard_joins) = std::thread::scope(|s| {
        let walker_state = Arc::clone(&state);
        let walker_queues = &queues[..];
        let walker = s.spawn(move || {
            let guard = QueueGuard {
                queues: walker_queues,
                armed: true,
            };
            let sink = match inline_worker {
                Some(w) => Sink::Inline(w),
                None => Sink::Queues {
                    queues: walker_queues,
                    staging: (0..shards).map(|_| Vec::new()).collect(),
                },
            };
            let res = Walker::<P>::new(&walker_state, sink, shards).run();
            // Normal exit already closed the streams; disarm the guard.
            let mut guard = guard;
            guard.armed = false;
            res
        });
        let shard_handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| {
                let q = Arc::clone(&queues[i]);
                s.spawn(move || {
                    struct Dead<'a>(&'a ShardQueue, bool);
                    impl Drop for Dead<'_> {
                        fn drop(&mut self) {
                            if self.1 {
                                self.0.kill();
                            }
                        }
                    }
                    let mut dead = Dead(&q, true);
                    while let Some(batch) = q.pop() {
                        for op in batch {
                            match op {
                                ShardOp::Control(e) => P::control(&mut w, &e),
                                ShardOp::Access {
                                    task,
                                    loc,
                                    write,
                                    index,
                                } => P::check(&mut w, task, loc, write, index),
                            }
                        }
                    }
                    dead.1 = false;
                    w
                })
            })
            .collect();

        let out = run_pool(opts.threads, opts.steal_seed, Some(Arc::clone(&state)), f);
        if !matches!(out, PoolOutcome::Done(_)) {
            state.abort();
        }
        let walk = walker.join();
        let shard_outs: Vec<_> = shard_handles.into_iter().map(|h| h.join()).collect();
        (out, walk, shard_outs)
    });

    // Joins are done; re-raise pipeline panics (walker first: a detector
    // panic usually follows from a malformed stream).
    let (walk, walked_worker) = match walk_join {
        Ok(pair) => pair,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let mut shard_workers = Vec::with_capacity(shards);
    shard_workers.extend(walked_worker);
    for j in shard_joins {
        match j {
            Ok(w) => shard_workers.push(w),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    let result = match pool_out {
        PoolOutcome::Done(r) => Ok(r),
        PoolOutcome::Deadlock(e) => Err(OnlineError::Deadlock(e)),
        PoolOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
    };

    let report = monitor.merge(shard_workers);
    let engine = EngineCounters {
        events: walk.events,
        control_events: walk.control_events,
        reads: walk.reads,
        writes: walk.writes,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        ..EngineCounters::default()
    };
    let stats = OnlineStats {
        threads: opts.threads,
        shards,
        publishes: state.publishes.load(Ordering::Relaxed),
        published_events: state.published_events.load(Ordering::Relaxed),
        tasks_walked: walk.tasks_walked,
        frontier_waits: walk.frontier_waits,
        unresolved_gets: walk.unresolved_gets,
        batches: walk.batches,
        per_shard_accesses: walk.per_shard_accesses,
        truncated: walk.truncated,
    };
    OnlineRun {
        result,
        report,
        engine,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TaskCtx;
    use crate::monitor::EventLog;
    use crate::serial::run_serial;

    /// A nested async/finish/future program exercising every control kind,
    /// written generically so it runs on both executors.
    fn mixed_program<C: TaskCtx>(ctx: &mut C) {
        let a = ctx.shared_array(16, 0u64, "a");
        let v = ctx.shared_var(0u64, "v");
        ctx.finish(|ctx| {
            for i in 0..4 {
                let a = a.clone();
                ctx.async_task(move |ctx| {
                    a.write(ctx, i, i as u64 + 1);
                    let x = a.read(ctx, i);
                    a.write(ctx, i + 4, x * 2);
                });
            }
        });
        let f = {
            let a = a.clone();
            ctx.future(move |ctx| a.read(ctx, 0) + 100)
        };
        let g = {
            let f = f.clone();
            ctx.future(move |ctx| ctx.get(&f) + 1)
        };
        let got = ctx.get(&g);
        v.write(ctx, got);
        ctx.finish(|ctx| {
            let v = v.clone();
            ctx.async_task(move |ctx| {
                ctx.finish(|ctx| {
                    let v = v.clone();
                    ctx.async_task(move |ctx| {
                        let x = v.read(ctx);
                        v.write(ctx, x + 1);
                    });
                });
                let x = v.read(ctx);
                v.write(ctx, x + 1);
            });
        });
    }

    fn serial_log<F: Fn(&mut crate::serial::SerialCtx<EventLog>)>(f: F) -> EventLog {
        let mut log = EventLog::default();
        run_serial(&mut log, |ctx| f(ctx));
        log
    }

    #[test]
    fn canonical_stream_equals_serial_elision() {
        let want = serial_log(|ctx| mixed_program(ctx));
        for threads in [1, 2, 4] {
            let run = run_online(
                OnlineOptions::threads(threads),
                Serialized::new(EventLog::default()),
                |ctx| mixed_program(ctx),
            );
            assert!(run.result.is_ok());
            assert_eq!(
                run.report.events, want.events,
                "threads={threads}: canonical stream diverged from serial elision"
            );
            assert!(run.stats.publishes > 0);
            assert_eq!(run.stats.tasks_walked, 9); // 6 asyncs + 2 futures + main
            assert!(!run.stats.truncated);
        }
    }

    #[test]
    fn seeded_schedules_preserve_the_canonical_stream() {
        let want = serial_log(|ctx| mixed_program(ctx));
        for seed in [1u64, 7, 42, 1337] {
            let run = run_online(
                OnlineOptions {
                    threads: 4,
                    shards: 1,
                    steal_seed: Some(seed),
                },
                Serialized::new(EventLog::default()),
                |ctx| mixed_program(ctx),
            );
            assert!(run.result.is_ok());
            assert_eq!(
                run.report.events, want.events,
                "seed={seed}: canonical stream diverged"
            );
        }
    }

    #[test]
    fn engine_counters_match_stream_shape() {
        let run = run_online(
            OnlineOptions::threads(2),
            Serialized::new(EventLog::default()),
            |ctx| mixed_program(ctx),
        );
        let accesses = run.report.shared_mem_accesses() as u64;
        assert_eq!(run.engine.reads + run.engine.writes, accesses);
        assert_eq!(
            run.engine.events,
            run.engine.control_events + accesses,
            "events = control + accesses"
        );
        assert!(run.engine.wall_ms >= 0.0);
    }

    #[test]
    fn deadlock_yields_error_and_truncated_stats() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<crate::parallel::ParHandle<u64>>();
        let run = run_online(
            OnlineOptions::threads(2),
            Serialized::new(EventLog::default()),
            move |ctx| {
                let f = ctx.future(move |ctx| {
                    let me = rx.recv().unwrap();
                    ctx.get(&me)
                });
                tx.send(f.clone()).unwrap();
                ctx.get(&f)
            },
        );
        assert!(matches!(run.result, Err(OnlineError::Deadlock(_))));
        assert!(run.stats.truncated);
    }

    #[test]
    fn task_panic_propagates_after_pipeline_join() {
        let res = std::panic::catch_unwind(|| {
            run_online(
                OnlineOptions::threads(2),
                Serialized::new(EventLog::default()),
                |ctx| {
                    ctx.finish(|ctx| {
                        ctx.async_task(|_| panic!("task body panic"));
                    });
                },
            )
        });
        assert!(res.is_err());
    }

    #[test]
    fn multi_shard_routing_partitions_accesses() {
        // EventLog across 2 workers: control broadcast, accesses split by
        // loc parity. Merge keeps worker 0, so its log must contain all
        // control events and exactly the even-loc accesses.
        struct TwoLogs;
        impl ParMonitor for TwoLogs {
            type Worker = EventLog;
            type Report = Vec<EventLog>;
            fn fork(&mut self, _w: usize) -> Vec<EventLog> {
                vec![EventLog::default(), EventLog::default()]
            }
            fn control(w: &mut EventLog, e: &Event) {
                crate::monitor::apply(w, e);
            }
            fn check(w: &mut EventLog, task: TaskId, loc: LocId, write: bool, _i: u64) {
                if write {
                    w.write(task, loc);
                } else {
                    w.read(task, loc);
                }
            }
            fn merge(self, workers: Vec<EventLog>) -> Vec<EventLog> {
                workers
            }
        }
        let run = run_online(OnlineOptions::threads(2), TwoLogs, |ctx| mixed_program(ctx));
        let logs = run.report;
        assert_eq!(logs.len(), 2);
        let serial = serial_log(|ctx| mixed_program(ctx));
        let total_accesses = serial.shared_mem_accesses();
        let (a0, a1) = (logs[0].shared_mem_accesses(), logs[1].shared_mem_accesses());
        assert_eq!(a0 + a1, total_accesses);
        assert!(a0 > 0 && a1 > 0, "both shards should see accesses");
        for log in &logs {
            for e in log.events.iter() {
                if let Event::Read(_, l) | Event::Write(_, l) = e {
                    let shard = if std::ptr::eq(log, &logs[0]) { 0 } else { 1 };
                    assert_eq!(l.index() % 2, shard, "access routed to wrong shard");
                }
            }
        }
        // Control stream identical on both shards.
        let controls = |log: &EventLog| -> Vec<Event> {
            log.events
                .iter()
                .filter(|e| !matches!(e, Event::Read(..) | Event::Write(..)))
                .cloned()
                .collect()
        };
        assert_eq!(controls(&logs[0]), controls(&logs[1]));
        assert_eq!(
            controls(&logs[0]),
            controls(&serial),
            "broadcast control stream must equal the serial elision's"
        );
    }
}
