//! Parallel executor with compensated blocking.
//!
//! Runs the same [`TaskCtx`] programs as the serial executor on a pool of
//! worker threads, with Habanero-Java semantics:
//!
//! * `async`/`future` bodies are submitted to a shared queue and executed
//!   by worker threads;
//! * `finish` blocks until every task transitively spawned inside it (its
//!   IEF registrations) has completed;
//! * `get` blocks until the future's value is available.
//!
//! Blocking uses **compensation, not helping**: a thread that blocks in
//! `get`/`finish` parks, and if it was the last thread able to execute
//! queued tasks, the pool spawns a replacement worker (exactly how HJ's
//! runtime compensates blocked workers). Help-first execution — running
//! arbitrary queued tasks while waiting — is *unsound* for futures: a
//! helped task may `get()` a future whose producer is suspended beneath it
//! on the same stack, deadlocking a perfectly race-free program. The
//! paper's programming model allows arbitrary point-to-point joins, so the
//! runtime must not introduce such artificial cycles.
//!
//! Plain [`run_parallel`] runs are *not* instrumented — the paper's
//! detector requires the serial depth-first order. Under
//! [`crate::online`]'s driver, however, the same executor records each
//! task's accesses and sync actions into per-task buffers (a [`ParCtx`]
//! carries an optional recorder) from which a canonical walker
//! reconstructs the serial-elision stream *during* the run; see
//! [`crate::online`] for that pipeline. The executor also demonstrates
//! the determinism property (Appendix A: a race-free program computes the
//! serial elision's answer under every schedule) and the Appendix-A
//! deadlock scenario, surfaced as [`DeadlockError`] by global stall
//! detection: if no thread is running task code, no task is queued, and at
//! least one wait is blocked, no future step can ever execute — precisely
//! a deadlocked computation graph.

use crate::api::TaskCtx;
use crate::labels::TaskLabel;
use crate::memory::MemCtx;
use crate::monitor::TaskKind;
use crate::online::{OnlineState, TaskRec};
use crate::sync::{Condvar, Mutex};
use futrace_util::ids::{LocId, TaskId};
use futrace_util::rng::Rng;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared job queue (the std-only replacement for a work-stealing
/// deque). All submissions and steals go through one mutex; contention is
/// acceptable because jobs in this runtime are coarse (task bodies), and
/// FIFO order preserves the help-first submission semantics the pool
/// relies on. With a steal seed the queue dequeues a uniformly random
/// entry instead — deterministic *schedule exploration* for tests (the
/// steal-index stream is a pure function of the seed), perturbing task
/// interleavings the FIFO order would never produce.
struct Injector<T> {
    q: Mutex<InjectorState<T>>,
}

struct InjectorState<T> {
    items: VecDeque<T>,
    rng: Option<Rng>,
}

impl<T> Injector<T> {
    fn new(steal_seed: Option<u64>) -> Self {
        Injector {
            q: Mutex::new(InjectorState {
                items: VecDeque::new(),
                rng: steal_seed.map(Rng::seeded),
            }),
        }
    }

    fn push(&self, item: T) {
        self.q.lock().items.push_back(item);
    }

    fn steal(&self) -> Option<T> {
        let mut g = self.q.lock();
        let InjectorState { items, rng } = &mut *g;
        match rng {
            None => items.pop_front(),
            Some(rng) => {
                if items.is_empty() {
                    None
                } else {
                    let i = rng.gen_range(0..items.len() as u64) as usize;
                    items.remove(i)
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.q.lock().items.is_empty()
    }
}

/// The computation deadlocked: no task was runnable or running and at
/// least one `get()`/`finish` was still waiting. Corresponds to a cycle
/// (or an unsatisfiable wait) in the computation graph, which Appendix A
/// shows can only arise from a data race on future handles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockError {
    /// Number of waits (gets + finishes) blocked at detection time.
    pub blocked_waits: usize,
}

impl std::fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock: {} blocked wait(s), no runnable or running task",
            self.blocked_waits
        )
    }
}

impl std::error::Error for DeadlockError {}

/// Sentinel panic payload used to unwind blocked waiters on deadlock (or
/// on a sibling task's panic).
struct PoisonUnwind;

type Job = Box<dyn FnOnce(&mut ParCtx) + Send>;

/// State guarded by the pool's lock: the completion generation (bumped on
/// every submit and completion) and, per blocked waiter, the generation at
/// which it last re-checked its condition and found it unsatisfied.
struct WaitState {
    generation: u64,
    blocked: std::collections::HashMap<u64, u64>,
}

struct PoolShared {
    queue: Injector<Job>,
    /// Threads currently executing task code and not blocked in a wait.
    /// Main counts while running; a blocked wait decrements.
    active: AtomicI64,
    /// Waits currently blocked (mirror of `WaitState::blocked.len()`).
    waiters: AtomicUsize,
    /// Unique ids for blocked-wait registrations.
    next_waiter: AtomicU64,
    /// Blocked-wait count captured at the moment a deadlock was declared.
    deadlock_waiters: AtomicUsize,
    /// Worker threads ever spawned (compensation cap accounting).
    workers_spawned: AtomicUsize,
    max_workers: usize,
    next_task: AtomicU32,
    next_loc: AtomicU32,
    shutdown: AtomicBool,
    poisoned: AtomicBool,
    deadlock: AtomicBool,
    /// First panic payload from a task body, to re-throw from the caller.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Join handles of all workers (drained at shutdown).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    lock: Mutex<WaitState>,
    cv: Condvar,
}

impl PoolShared {
    fn notify(&self) {
        let mut g = self.lock.lock();
        g.generation += 1;
        drop(g);
        self.cv.notify_all();
    }

    fn poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic_payload.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        self.poisoned.store(true, Ordering::SeqCst);
        self.notify();
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::SeqCst) || self.deadlock.load(Ordering::SeqCst) {
            // resume_unwind (not panic_any) so the process panic hook does
            // not print a backtrace for this internal control transfer.
            std::panic::resume_unwind(Box::new(PoisonUnwind));
        }
    }

    /// Spawns a compensation/initial worker if under the cap.
    fn spawn_worker(self: &Arc<Self>) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let prev = self.workers_spawned.fetch_add(1, Ordering::SeqCst);
        if prev >= self.max_workers {
            self.workers_spawned.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let shared = Arc::clone(self);
        let handle = std::thread::spawn(move || worker_loop(shared));
        self.handles.lock().push(handle);
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || shared.poisoned.load(Ordering::SeqCst)
            || shared.deadlock.load(Ordering::SeqCst)
        {
            return;
        }
        // Claim activity *before* stealing so a dequeued-but-unstarted job
        // can never be invisible to the stall detector (queue empty +
        // active still zero would be a spurious freeze).
        shared.active.fetch_add(1, Ordering::SeqCst);
        match shared.queue.steal() {
            Some(job) => {
                let mut ctx = ParCtx {
                    shared: Arc::clone(&shared),
                    cur: TaskId::MAIN, // each job installs its own id
                    finish: Arc::new(FinishScope {
                        pending: AtomicUsize::new(0),
                    }),
                    rec: None,
                };
                let result = catch_unwind(AssertUnwindSafe(|| job(&mut ctx)));
                shared.active.fetch_sub(1, Ordering::SeqCst);
                if let Err(payload) = result {
                    if payload.downcast_ref::<PoisonUnwind>().is_none() {
                        shared.poison(payload);
                    }
                    return;
                }
                shared.notify();
            }
            None => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                let g = shared.lock.lock();
                if shared.queue.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                    drop(shared.cv.wait_timeout(g, Duration::from_micros(500)));
                }
            }
        }
    }
}

struct FinishScope {
    pending: AtomicUsize,
}

struct FutCell<T> {
    task: TaskId,
    done: AtomicBool,
    value: Mutex<Option<T>>,
}

/// Handle to a future task under the parallel executor.
pub struct ParHandle<T> {
    cell: Arc<FutCell<T>>,
}

impl<T> Clone for ParHandle<T> {
    fn clone(&self) -> Self {
        ParHandle {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T> ParHandle<T> {
    /// The future task this handle refers to.
    pub fn task(&self) -> TaskId {
        self.cell.task
    }
}

/// Per-running-task execution context for the parallel executor.
pub struct ParCtx {
    shared: Arc<PoolShared>,
    cur: TaskId,
    /// The finish scope a task spawned right now would register with (its
    /// prospective IEF).
    finish: Arc<FinishScope>,
    /// Online recorder (access buffer + sync-point publisher); present iff
    /// the pool runs under [`crate::online::run_online`].
    rec: Option<TaskRec>,
}

impl ParCtx {
    fn submit(&self, job: Job) {
        self.shared.queue.push(job);
        self.shared.notify();
    }

    /// This task's fork-path label, when the run is online-instrumented.
    /// Labels are maintained O(1) at spawn (see [`crate::labels`]).
    pub fn task_label(&self) -> Option<&TaskLabel> {
        self.rec.as_ref().map(|r| r.label())
    }

    /// Final publish + end mark for this task's recorder (no-op when
    /// uninstrumented). Called by the pool after a task body returns.
    fn end_recording(&mut self) {
        if let Some(rec) = self.rec.as_mut() {
            rec.end();
        }
    }

    /// Blocks until `done()` holds, with compensation and stall detection.
    ///
    /// Deadlock is declared by a deterministic generation protocol, not by
    /// timing: every job submission and completion bumps a generation
    /// counter; a blocked waiter records, under the pool lock, the
    /// generation at which it last re-checked its condition and found it
    /// unsatisfied. If no thread is running task code, no task is queued,
    /// and *every* blocked waiter has re-checked at the *current*
    /// generation, the system state can never change again — a deadlock.
    /// (Completions set their flags *before* bumping the generation, so a
    /// waiter that records the current generation really did observe the
    /// effects of every completed task.)
    fn wait_until(&mut self, done: impl Fn() -> bool) {
        if done() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let my_id = shared.next_waiter.fetch_add(1, Ordering::Relaxed);
        shared.waiters.fetch_add(1, Ordering::SeqCst);
        // This thread can no longer execute queued tasks.
        let was_active = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
        // Compensation: if nothing can run queued work anymore, add a
        // worker (HJ-style compensated blocking).
        if was_active <= 0 && !shared.queue.is_empty() {
            shared.spawn_worker();
        }
        struct Guard<'a> {
            shared: &'a PoolShared,
            id: u64,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.shared.lock.lock().blocked.remove(&self.id);
                self.shared.waiters.fetch_sub(1, Ordering::SeqCst);
                self.shared.active.fetch_add(1, Ordering::SeqCst);
            }
        }
        let _g = Guard {
            shared: &shared,
            id: my_id,
        };
        loop {
            shared.check_poison();
            if done() {
                return;
            }
            let mut g = shared.lock.lock();
            if shared.poisoned.load(Ordering::SeqCst) || shared.deadlock.load(Ordering::SeqCst) {
                continue; // re-enters check_poison
            }
            // Re-check under the lock: completions publish their effects
            // before bumping the generation, so recording `g.generation`
            // below certifies this waiter saw everything completed so far.
            if done() {
                return;
            }
            let cur = g.generation;
            g.blocked.insert(my_id, cur);
            // Frozen only if EVERY registered wait has stamped the current
            // generation: `waiters` is incremented before a blocking thread
            // reaches this lock, so requiring `blocked.len() == waiters`
            // keeps a wait that is still in transition (it may be about to
            // observe its condition satisfied and resume running task
            // code) from being silently presumed stuck.
            let frozen = shared.active.load(Ordering::SeqCst) <= 0
                && shared.queue.is_empty()
                && !g.blocked.is_empty()
                && g.blocked.len() == shared.waiters.load(Ordering::SeqCst)
                && g.blocked.values().all(|&v| v == cur);
            if frozen {
                if std::env::var_os("FUTRACE_DEADLOCK_DEBUG").is_some() {
                    eprintln!(
                        "[deadlock-debug] active={} queue_empty={} blocked={:?} gen={} waiters={} spawned={}",
                        shared.active.load(Ordering::SeqCst),
                        shared.queue.is_empty(),
                        g.blocked,
                        g.generation,
                        shared.waiters.load(Ordering::SeqCst),
                        shared.workers_spawned.load(Ordering::SeqCst),
                    );
                }
                shared
                    .deadlock_waiters
                    .store(g.blocked.len(), Ordering::SeqCst);
                shared.deadlock.store(true, Ordering::SeqCst);
                drop(g);
                shared.cv.notify_all();
                std::panic::resume_unwind(Box::new(PoisonUnwind));
            }
            drop(shared.cv.wait_timeout(g, Duration::from_micros(500)));
        }
    }
}

impl MemCtx for ParCtx {
    fn alloc(&mut self, n: u32, name: &str) -> LocId {
        let base = self.shared.next_loc.fetch_add(n, Ordering::Relaxed);
        if let Some(rec) = self.rec.as_mut() {
            rec.record_alloc(base, n, name);
        }
        LocId(base)
    }

    #[inline]
    fn on_read(&mut self, loc: LocId) {
        if let Some(rec) = self.rec.as_mut() {
            rec.record_access(loc, false);
        }
    }

    #[inline]
    fn on_write(&mut self, loc: LocId) {
        if let Some(rec) = self.rec.as_mut() {
            rec.record_access(loc, true);
        }
    }
}

impl TaskCtx for ParCtx {
    type Handle<T: Send + 'static> = ParHandle<T>;

    fn current_task(&self) -> TaskId {
        self.cur
    }

    fn async_task<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let child = TaskId(self.shared.next_task.fetch_add(1, Ordering::Relaxed));
        // The child's slot must exist (and the spawn be published) before
        // the job can run, so the canonical walker always finds it.
        let pre = self
            .rec
            .as_mut()
            .map(|rec| rec.record_spawn(child.0, TaskKind::Async));
        let scope = Arc::clone(&self.finish);
        scope.pending.fetch_add(1, Ordering::SeqCst);
        self.submit(Box::new(move |host: &mut ParCtx| {
            let shared = Arc::clone(&host.shared);
            let mut ctx = ParCtx {
                shared: Arc::clone(&host.shared),
                cur: child,
                finish: Arc::clone(&scope),
                rec: pre.map(TaskRec::spawned),
            };
            f(&mut ctx);
            ctx.end_recording();
            scope.pending.fetch_sub(1, Ordering::SeqCst);
            shared.notify();
        }));
    }

    fn finish<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self),
    {
        if let Some(rec) = self.rec.as_mut() {
            rec.record_finish_start();
        }
        let scope = Arc::new(FinishScope {
            pending: AtomicUsize::new(0),
        });
        let saved = std::mem::replace(&mut self.finish, Arc::clone(&scope));
        f(self);
        self.finish = saved;
        self.wait_until(|| scope.pending.load(Ordering::SeqCst) == 0);
        if let Some(rec) = self.rec.as_mut() {
            rec.record_finish_end();
        }
    }

    fn future<T, F>(&mut self, f: F) -> ParHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static,
    {
        let child = TaskId(self.shared.next_task.fetch_add(1, Ordering::Relaxed));
        let pre = self
            .rec
            .as_mut()
            .map(|rec| rec.record_spawn(child.0, TaskKind::Future));
        let cell = Arc::new(FutCell {
            task: child,
            done: AtomicBool::new(false),
            value: Mutex::new(None),
        });
        let scope = Arc::clone(&self.finish);
        scope.pending.fetch_add(1, Ordering::SeqCst);
        let job_cell = Arc::clone(&cell);
        self.submit(Box::new(move |host: &mut ParCtx| {
            let shared = Arc::clone(&host.shared);
            let mut ctx = ParCtx {
                shared: Arc::clone(&host.shared),
                cur: child,
                finish: Arc::clone(&scope),
                rec: pre.map(TaskRec::spawned),
            };
            let v = f(&mut ctx);
            ctx.end_recording();
            *job_cell.value.lock() = Some(v);
            job_cell.done.store(true, Ordering::SeqCst);
            scope.pending.fetch_sub(1, Ordering::SeqCst);
            shared.notify();
        }));
        ParHandle { cell }
    }

    fn get<T>(&mut self, h: &ParHandle<T>) -> T
    where
        T: Clone + Send + 'static,
    {
        let cell = Arc::clone(&h.cell);
        self.wait_until(|| cell.done.load(Ordering::SeqCst));
        if let Some(rec) = self.rec.as_mut() {
            rec.record_get(h.cell.task.0);
        }
        h.cell
            .value
            .lock()
            .as_ref()
            .expect("future marked done")
            .clone()
    }
}

/// Runs `f` as the main task with `threads` initial worker threads (the
/// pool adds compensation workers while waits are blocked, up to an
/// internal cap). Returns `f`'s result, or [`DeadlockError`] if the
/// computation stalled with blocked waits.
///
/// Panics from task bodies are propagated to the caller.
///
/// ```
/// use futrace_runtime::{run_parallel, TaskCtx};
///
/// let out = run_parallel(4, |ctx| {
///     let f = ctx.future(|_| 20u64);
///     let g = ctx.future(|_| 22u64);
///     ctx.get(&f) + ctx.get(&g)
/// })
/// .unwrap();
/// assert_eq!(out, 42);
/// ```
pub fn run_parallel<R, F>(threads: usize, f: F) -> Result<R, DeadlockError>
where
    R: Send,
    F: FnOnce(&mut ParCtx) -> R + Send,
{
    finish_pool(run_pool(threads, None, None, f))
}

/// [`run_parallel`] with a seeded random steal order: the pool dequeues a
/// uniformly random queued task (index stream derived from `steal_seed`)
/// instead of FIFO. Used by tests to explore schedules reproducibly —
/// online detection verdicts must be identical across all of them.
pub fn run_parallel_seeded<R, F>(threads: usize, steal_seed: u64, f: F) -> Result<R, DeadlockError>
where
    R: Send,
    F: FnOnce(&mut ParCtx) -> R + Send,
{
    finish_pool(run_pool(threads, Some(steal_seed), None, f))
}

fn finish_pool<R>(out: PoolOutcome<R>) -> Result<R, DeadlockError> {
    match out {
        PoolOutcome::Done(r) => Ok(r),
        PoolOutcome::Deadlock(e) => Err(e),
        PoolOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
    }
}

/// How a pool run ended. [`crate::online`] needs the panic payload as a
/// value (not an unwind) so it can shut the analysis pipeline down before
/// re-raising.
pub(crate) enum PoolOutcome<R> {
    /// The program completed; all tasks joined.
    Done(R),
    /// Deterministic global-stall detection fired.
    Deadlock(DeadlockError),
    /// A task body (or the main closure) panicked.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Pool driver shared by [`run_parallel`], [`run_parallel_seeded`], and
/// [`crate::online::run_online`]: runs `f` as the main task, waits for the
/// root scope, shuts the pool down, and classifies the outcome. When
/// `online` is set, every task (main included) records its actions for the
/// canonical walker.
pub(crate) fn run_pool<R, F>(
    threads: usize,
    steal_seed: Option<u64>,
    online: Option<Arc<OnlineState>>,
    f: F,
) -> PoolOutcome<R>
where
    R: Send,
    F: FnOnce(&mut ParCtx) -> R + Send,
{
    assert!(threads >= 1, "need at least one thread");
    let shared = Arc::new(PoolShared {
        queue: Injector::new(steal_seed),
        active: AtomicI64::new(1), // the main task
        waiters: AtomicUsize::new(0),
        next_waiter: AtomicU64::new(0),
        deadlock_waiters: AtomicUsize::new(0),
        workers_spawned: AtomicUsize::new(0),
        max_workers: (threads + 64).max(256),
        next_task: AtomicU32::new(1),
        next_loc: AtomicU32::new(0),
        shutdown: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
        deadlock: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
        handles: Mutex::new(Vec::new()),
        lock: Mutex::new(WaitState {
            generation: 0,
            blocked: std::collections::HashMap::new(),
        }),
        cv: Condvar::new(),
    });
    for _ in 0..threads {
        shared.spawn_worker();
    }

    let root_scope = Arc::new(FinishScope {
        pending: AtomicUsize::new(0),
    });
    let mut main_ctx = ParCtx {
        shared: Arc::clone(&shared),
        cur: TaskId::MAIN,
        finish: Arc::clone(&root_scope),
        rec: online.map(TaskRec::main),
    };
    let out = catch_unwind(AssertUnwindSafe(|| {
        let r = f(&mut main_ctx);
        // Implicit finish around main: wait for all outstanding tasks.
        main_ctx.wait_until(|| root_scope.pending.load(Ordering::SeqCst) == 0);
        main_ctx.end_recording();
        r
    }));

    shared.shutdown.store(true, Ordering::SeqCst);
    shared.notify();
    loop {
        let mut handles = shared.handles.lock();
        let Some(h) = handles.pop() else { break };
        drop(handles);
        let _ = h.join();
        shared.notify();
    }

    match out {
        Ok(r) => PoolOutcome::Done(r),
        Err(payload) => {
            if payload.downcast_ref::<PoisonUnwind>().is_some() {
                if let Some(original) = shared.panic_payload.lock().take() {
                    PoolOutcome::Panicked(original)
                } else {
                    PoolOutcome::Deadlock(DeadlockError {
                        blocked_waits: shared.deadlock_waiters.load(Ordering::SeqCst),
                    })
                }
            } else {
                PoolOutcome::Panicked(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_future_values() {
        let out = run_parallel(4, |ctx| {
            let f = ctx.future(|_| 1u64);
            let g = ctx.future(|_| 2u64);
            ctx.get(&f) + ctx.get(&g)
        })
        .unwrap();
        assert_eq!(out, 3);
    }

    #[test]
    fn finish_waits_for_all_asyncs() {
        let out = run_parallel(4, |ctx| {
            let a = ctx.shared_array(64, 0u64, "a");
            ctx.finish(|ctx| {
                for i in 0..64 {
                    let a = a.clone();
                    ctx.async_task(move |ctx| a.write(ctx, i, (i * i) as u64));
                }
            });
            (0..64).map(|i| a.peek(i)).sum::<u64>()
        })
        .unwrap();
        assert_eq!(out, (0..64u64).map(|i| i * i).sum());
    }

    #[test]
    fn nested_spawns_and_finishes() {
        let out = run_parallel(3, |ctx| {
            let v = ctx.shared_var(0u64, "v");
            ctx.finish(|ctx| {
                let v2 = v.clone();
                ctx.async_task(move |ctx| {
                    ctx.finish(|ctx| {
                        let v3 = v2.clone();
                        ctx.async_task(move |ctx| {
                            let old = v3.read(ctx);
                            v3.write(ctx, old + 7);
                        });
                    });
                    let old = v2.read(ctx);
                    v2.write(ctx, old + 1);
                });
            });
            v.peek()
        })
        .unwrap();
        assert_eq!(out, 8);
    }

    #[test]
    fn dependent_future_chain() {
        let out = run_parallel(4, |ctx| {
            let a = ctx.future(|_| 1u64);
            let a2 = a.clone();
            let b = ctx.future(move |ctx| ctx.get(&a2) + 1);
            let b2 = b.clone();
            let c = ctx.future(move |ctx| ctx.get(&b2) + 1);
            ctx.get(&c)
        })
        .unwrap();
        assert_eq!(out, 3);
    }

    #[test]
    fn deep_get_chain_needs_compensation() {
        // A chain of 40 futures, each blocking on the previous one, run on
        // 2 threads: only compensated blocking can complete this.
        let out = run_parallel(2, |ctx| {
            let mut prev = ctx.future(|_| 0u64);
            for _ in 0..40 {
                let p = prev.clone();
                prev = ctx.future(move |ctx| ctx.get(&p) + 1);
            }
            ctx.get(&prev)
        })
        .unwrap();
        assert_eq!(out, 40);
    }

    #[test]
    fn wide_fanout_and_reduce() {
        let out = run_parallel(8, |ctx| {
            let handles: Vec<_> = (0..200u64).map(|i| ctx.future(move |_| i)).collect();
            handles.iter().map(|h| ctx.get(h)).sum::<u64>()
        })
        .unwrap();
        assert_eq!(out, (0..200u64).sum());
    }

    #[test]
    fn race_free_program_matches_serial_elision() {
        let serial: u64 = {
            let mut acc = vec![0u64; 32];
            acc[0] = 1;
            for i in 1..32 {
                acc[i] = acc[i - 1] * 3 % 1001;
            }
            acc[31]
        };
        for _ in 0..5 {
            let out = run_parallel(4, |ctx| {
                let mut prev = ctx.future(|_| 1u64);
                for _ in 1..32 {
                    let p = prev.clone();
                    prev = ctx.future(move |ctx| ctx.get(&p) * 3 % 1001);
                }
                ctx.get(&prev)
            })
            .unwrap();
            assert_eq!(out, serial);
        }
    }

    #[test]
    fn deadlock_is_detected() {
        // Appendix A's cyclic wait, made deterministic: two futures that
        // wait for each other, exchanging handles through std channels (the
        // runtime-level effect of the racy handle exchange).
        use std::sync::mpsc;
        let (txa, rxa) = mpsc::channel::<ParHandle<u64>>();
        let (txb, rxb) = mpsc::channel::<ParHandle<u64>>();
        let res = run_parallel(3, move |ctx| {
            let fa = ctx.future(move |ctx| {
                let hb = rxb.recv().unwrap();
                ctx.get(&hb)
            });
            txa.send(fa.clone()).unwrap();
            let fb = ctx.future(move |ctx| {
                let ha = rxa.recv().unwrap();
                ctx.get(&ha)
            });
            txb.send(fb.clone()).unwrap();
            ctx.get(&fa)
        });
        assert!(matches!(res, Err(DeadlockError { .. })), "got {res:?}");
    }

    #[test]
    fn self_get_deadlocks() {
        // A future that gets itself (handle passed through a channel).
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<ParHandle<u64>>();
        let res = run_parallel(2, move |ctx| {
            let f = ctx.future(move |ctx| {
                let me = rx.recv().unwrap();
                ctx.get(&me)
            });
            tx.send(f.clone()).unwrap();
            ctx.get(&f)
        });
        assert!(matches!(res, Err(DeadlockError { .. })), "got {res:?}");
    }

    #[test]
    fn user_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            let _ = run_parallel(2, |ctx| {
                ctx.finish(|ctx| {
                    ctx.async_task(|_| panic!("boom"));
                });
            });
        });
        assert!(res.is_err());
    }

    #[test]
    fn panic_in_future_unblocks_getter() {
        let res = std::panic::catch_unwind(|| {
            let _ = run_parallel(2, |ctx| {
                let f = ctx.future::<u64, _>(|_| panic!("producer failed"));
                ctx.get(&f)
            });
        });
        assert!(res.is_err(), "the get must not hang on a dead producer");
    }

    #[test]
    fn single_thread_pool_works() {
        let out = run_parallel(1, |ctx| {
            let f = ctx.future(|_| 5u64);
            let mut s = ctx.get(&f);
            ctx.finish(|ctx| {
                let v = ctx.shared_var(0u64, "v");
                let v2 = v.clone();
                ctx.async_task(move |ctx| v2.write(ctx, 37));
                s += 0;
            });
            s
        })
        .unwrap();
        assert_eq!(out, 5);
    }
}
