//! Serial depth-first executor.
//!
//! Executes an async/finish/future program in **serial depth-first order**
//! — the order of its serial elision (Appendix A.1) — while emitting the
//! instrumentation event stream to a [`Monitor`]. This is the execution the
//! paper's detector is defined over: "the representation assumes that the
//! input program is executed serially in depth-first order" (§4.1).
//!
//! Depth-first means every spawned body (async or future) runs to
//! completion at its spawn point before the parent continues. Consequently
//! `get()` never blocks here: the awaited future always completed when its
//! handle was created. The monitor still observes the `get` as a join event
//! (Algorithm 4), which is all the detector needs to reason about *all*
//! possible parallel interleavings of the program for this input.
//!
//! ## Conventions
//!
//! * The main task is [`TaskId::MAIN`] (`T0`) and runs inside the implicit
//!   finish scope `F0` ("there is an implicit finish scope surrounding the
//!   body of main()", §2). Monitors are expected to pre-initialize state for
//!   these two ids (the detector's Algorithm 1 does exactly this).
//! * Task ids are assigned in spawn order, so `TaskId` order equals spawn
//!   preorder.
//! * At the end of the run the executor emits `finish_end(T0, F0, joins)`
//!   followed by `task_end(T0)`.

use crate::api::TaskCtx;
use crate::memory::MemCtx;
use crate::monitor::{Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};
use crate::sync::Mutex;
use std::sync::Arc;

/// Handle to a future task under the serial executor. The value is always
/// present by the time user code can hold the handle (run-to-completion),
/// so [`TaskCtx::get`] never blocks.
pub struct FutureHandle<T> {
    task: TaskId,
    value: Arc<Mutex<Option<T>>>,
}

impl<T> Clone for FutureHandle<T> {
    fn clone(&self) -> Self {
        FutureHandle {
            task: self.task,
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> FutureHandle<T> {
    /// The future task this handle refers to.
    pub fn task(&self) -> TaskId {
        self.task
    }
}

struct FinishFrame {
    id: FinishId,
    /// Tasks whose Immediately Enclosing Finish is this scope — the paper's
    /// `F.joins`, reported to the monitor at `finish_end`.
    joins: Vec<TaskId>,
}

/// Execution context of the serial depth-first executor, parameterized by
/// the instrumentation monitor (static dispatch keeps the per-access cost
/// of hot `read`/`write` events down to an inlined call).
pub struct SerialCtx<'m, M: Monitor> {
    mon: &'m mut M,
    cur: TaskId,
    next_task: u32,
    next_finish: u32,
    next_loc: u32,
    finish_stack: Vec<FinishFrame>,
}

impl<'m, M: Monitor> SerialCtx<'m, M> {
    fn new(mon: &'m mut M) -> Self {
        SerialCtx {
            mon,
            cur: TaskId::MAIN,
            next_task: 1,
            next_finish: 1,
            next_loc: 0,
            finish_stack: vec![FinishFrame {
                id: FinishId(0),
                joins: Vec::new(),
            }],
        }
    }

    /// Immutable access to the monitor (e.g. to inspect detector state from
    /// inside a test program).
    pub fn monitor(&self) -> &M {
        self.mon
    }

    /// Mutable access to the monitor.
    pub fn monitor_mut(&mut self) -> &mut M {
        self.mon
    }

    /// The finish scope that would be the IEF of a task spawned now.
    pub fn current_finish(&self) -> FinishId {
        self.finish_stack.last().expect("finish stack").id
    }

    fn spawn_common(&mut self, kind: TaskKind) -> (TaskId, TaskId) {
        let child = TaskId(self.next_task);
        self.next_task += 1;
        let frame = self.finish_stack.last_mut().expect("finish stack");
        frame.joins.push(child);
        let ief = frame.id;
        self.mon.task_create(self.cur, child, kind, ief);
        let parent = self.cur;
        self.cur = child;
        (parent, child)
    }
}

impl<M: Monitor> MemCtx for SerialCtx<'_, M> {
    fn alloc(&mut self, n: u32, name: &str) -> LocId {
        let base = LocId(self.next_loc);
        self.next_loc = self
            .next_loc
            .checked_add(n)
            .expect("shared location space exhausted");
        self.mon.alloc(base, n, name);
        base
    }

    #[inline]
    fn on_read(&mut self, loc: LocId) {
        self.mon.read(self.cur, loc);
    }

    #[inline]
    fn on_write(&mut self, loc: LocId) {
        self.mon.write(self.cur, loc);
    }
}

impl<M: Monitor> TaskCtx for SerialCtx<'_, M> {
    type Handle<T: Send + 'static> = FutureHandle<T>;

    fn current_task(&self) -> TaskId {
        self.cur
    }

    fn async_task<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let (parent, child) = self.spawn_common(TaskKind::Async);
        f(self);
        self.mon.task_end(child);
        self.cur = parent;
    }

    fn finish<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self),
    {
        let fid = FinishId(self.next_finish);
        self.next_finish += 1;
        self.mon.finish_start(self.cur, fid);
        self.finish_stack.push(FinishFrame {
            id: fid,
            joins: Vec::new(),
        });
        f(self);
        let frame = self.finish_stack.pop().expect("finish stack");
        debug_assert_eq!(frame.id, fid, "finish scopes are strictly nested");
        self.mon.finish_end(self.cur, fid, &frame.joins);
    }

    fn future<T, F>(&mut self, f: F) -> FutureHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static,
    {
        let (parent, child) = self.spawn_common(TaskKind::Future);
        let value = f(self);
        self.mon.task_end(child);
        self.cur = parent;
        FutureHandle {
            task: child,
            value: Arc::new(Mutex::new(Some(value))),
        }
    }

    fn get<T>(&mut self, h: &FutureHandle<T>) -> T
    where
        T: Clone + Send + 'static,
    {
        self.mon.get(self.cur, h.task);
        h.value
            .lock()
            .as_ref()
            .expect("future value present under serial depth-first execution")
            .clone()
    }
}

/// Runs `f` as the body of the main task under serial depth-first
/// execution, reporting every instrumentation event to `mon`. Returns `f`'s
/// result.
///
/// ```
/// use futrace_runtime::{run_serial, EventLog, TaskCtx};
///
/// let mut log = EventLog::new();
/// let total = run_serial(&mut log, |ctx| {
///     let f = ctx.future(|_| 21i64);
///     ctx.get(&f) * 2
/// });
/// assert_eq!(total, 42);
/// assert_eq!(log.tasks_created(), 1);
/// ```
pub fn run_serial<M: Monitor, R>(mon: &mut M, f: impl FnOnce(&mut SerialCtx<M>) -> R) -> R {
    let mut ctx = SerialCtx::new(mon);
    let r = f(&mut ctx);
    let frame = ctx.finish_stack.pop().expect("implicit finish frame");
    debug_assert!(ctx.finish_stack.is_empty(), "unbalanced finish scopes");
    ctx.mon.finish_end(TaskId::MAIN, frame.id, &frame.joins);
    ctx.mon.task_end(TaskId::MAIN);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{Event, EventLog};

    #[test]
    fn main_runs_and_returns() {
        let mut log = EventLog::new();
        let out = run_serial(&mut log, |_ctx| 7);
        assert_eq!(out, 7);
        // Implicit finish end + main task end.
        assert_eq!(
            log.events,
            vec![
                Event::FinishEnd(TaskId::MAIN, FinishId(0), vec![]),
                Event::TaskEnd(TaskId::MAIN),
            ]
        );
    }

    #[test]
    fn async_runs_depth_first() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let v = ctx.shared_var(0u64, "v");
            ctx.finish(|ctx| {
                let vc = v.clone();
                ctx.async_task(move |ctx| vc.write(ctx, 5));
                // Depth-first: the child already ran.
                assert_eq!(v.peek(), 5);
            });
        });
        let kinds: Vec<&Event> = log.events.iter().collect();
        // alloc, finish_start, task_create, write, task_end, finish_end, ...
        assert!(matches!(kinds[0], Event::Alloc(..)));
        assert!(matches!(kinds[1], Event::FinishStart(..)));
        assert!(
            matches!(kinds[2], Event::TaskCreate { child, kind: TaskKind::Async, .. } if *child == TaskId(1))
        );
        assert!(matches!(kinds[3], Event::Write(TaskId(1), _)));
        assert!(matches!(kinds[4], Event::TaskEnd(TaskId(1))));
        assert!(
            matches!(&kinds[5], Event::FinishEnd(t, FinishId(1), joins) if *t == TaskId::MAIN && joins == &vec![TaskId(1)])
        );
    }

    #[test]
    fn future_get_returns_value() {
        let mut log = EventLog::new();
        let out = run_serial(&mut log, |ctx| {
            let f = ctx.future(|_| "hello".to_string());
            let g = ctx.future(|_| 10i32);
            format!("{} {}", ctx.get(&f), ctx.get(&g) + 1)
        });
        assert_eq!(out, "hello 11");
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e, Event::Get { waiter, awaited } if *waiter == TaskId::MAIN && *awaited == TaskId(1))));
    }

    #[test]
    fn ief_attribution_follows_dynamic_nesting() {
        // A task spawned inside a child task (with no intervening finish)
        // has the *same* IEF as the child — the innermost dynamic finish.
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            ctx.finish(|ctx| {
                ctx.async_task(|ctx| {
                    ctx.async_task(|_| {});
                });
            });
        });
        let iefs: Vec<(TaskId, FinishId)> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::TaskCreate { child, ief, .. } => Some((*child, *ief)),
                _ => None,
            })
            .collect();
        assert_eq!(iefs, vec![(TaskId(1), FinishId(1)), (TaskId(2), FinishId(1))]);
        // And the finish joins both.
        assert!(log.events.iter().any(|e| matches!(
            e,
            Event::FinishEnd(_, FinishId(1), joins) if joins == &vec![TaskId(1), TaskId(2)]
        )));
    }

    #[test]
    fn nested_finish_partitions_joins() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            ctx.finish(|ctx| {
                ctx.async_task(|_| {}); // T1, IEF = F1
                ctx.finish(|ctx| {
                    ctx.async_task(|_| {}); // T2, IEF = F2
                });
                ctx.async_task(|_| {}); // T3, IEF = F1
            });
        });
        let ends: Vec<(FinishId, Vec<TaskId>)> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::FinishEnd(_, f, joins) => Some((*f, joins.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            ends,
            vec![
                (FinishId(2), vec![TaskId(2)]),
                (FinishId(1), vec![TaskId(1), TaskId(3)]),
                (FinishId(0), vec![]),
            ]
        );
    }

    #[test]
    fn task_ids_are_spawn_preorder() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let _a = ctx.future(|ctx| {
                let _b = ctx.future(|_| 0u8); // T2 inside T1
                1u8
            });
            let _c = ctx.future(|_| 2u8); // T3
        });
        let created: Vec<(TaskId, TaskId)> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::TaskCreate { parent, child, .. } => Some((*parent, *child)),
                _ => None,
            })
            .collect();
        assert_eq!(
            created,
            vec![
                (TaskId(0), TaskId(1)),
                (TaskId(1), TaskId(2)),
                (TaskId(0), TaskId(3)),
            ]
        );
    }

    #[test]
    fn current_task_tracks_execution() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            assert_eq!(ctx.current_task(), TaskId::MAIN);
            ctx.async_task(|ctx| {
                assert_eq!(ctx.current_task(), TaskId(1));
            });
            assert_eq!(ctx.current_task(), TaskId::MAIN);
        });
    }

    #[test]
    fn handle_is_clonable_and_shareable() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let f = ctx.future(|_| 3u64);
            let f2 = f.clone();
            ctx.async_task(move |ctx| {
                assert_eq!(ctx.get(&f2), 3);
            });
            assert_eq!(ctx.get(&f), 3);
            assert_eq!(f.task(), TaskId(1));
        });
        // Two get events on the same future task by different waiters.
        let gets: Vec<(TaskId, TaskId)> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Get { waiter, awaited } => Some((*waiter, *awaited)),
                _ => None,
            })
            .collect();
        assert_eq!(gets, vec![(TaskId(2), TaskId(1)), (TaskId(0), TaskId(1))]);
    }

    #[test]
    fn determinism_same_program_same_event_stream() {
        let run = || {
            let mut log = EventLog::new();
            run_serial(&mut log, |ctx| {
                let a = ctx.shared_array(4, 0u64, "a");
                ctx.finish(|ctx| {
                    for i in 0..4 {
                        let a = a.clone();
                        ctx.async_task(move |ctx| a.write(ctx, i, i as u64));
                    }
                });
                let mut s = 0;
                for i in 0..4 {
                    s += a.read(ctx, i);
                }
                s
            })
        };
        assert_eq!(run(), 6);
        let mut l1 = EventLog::new();
        let mut l2 = EventLog::new();
        run_serial(&mut l1, |ctx| {
            let v = ctx.shared_var(0u8, "v");
            v.write(ctx, 1);
        });
        run_serial(&mut l2, |ctx| {
            let v = ctx.shared_var(0u8, "v");
            v.write(ctx, 1);
        });
        assert_eq!(l1.events, l2.events);
    }
}
