//! Thin std-only synchronization wrappers.
//!
//! The runtime previously used `parking_lot`; these wrappers keep its
//! ergonomic surface (`lock()` returns a guard directly) on top of
//! `std::sync`, with lock poisoning deliberately ignored: the executors
//! have their own panic protocol (catch, record the payload, poison the
//! *pool*, unwind waiters), so a std-level `PoisonError` carries no extra
//! information and would only turn clean panic propagation into a double
//! panic.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

pub use std::sync::MutexGuard;

/// A mutex whose `lock` never fails: poisoning is stripped (see module
/// docs for why that is sound here).
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Wakes all threads blocked in [`Condvar::wait`]/[`Condvar::wait_timeout`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one thread blocked in [`Condvar::wait`]/[`Condvar::wait_timeout`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Waits on the condition (releasing `guard`) until notified; reacquires
    /// the lock and returns the guard. Spurious wakeups are possible —
    /// callers loop on their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Waits on the condition (releasing `guard`) until notified or until
    /// `timeout` elapses; reacquires the lock and returns the guard.
    /// Spurious wakeups are possible — callers loop on their predicate.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T> {
        self.0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the next lock just works.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_and_notify_one_hand_off() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while *g == 0 {
                g = cv.wait(g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = 9;
            cv.notify_one();
        }
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn wait_timeout_returns_after_notify_or_deadline() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait_timeout(g, Duration::from_millis(10));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
