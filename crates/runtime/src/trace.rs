//! Compact binary serialization of instrumentation event streams.
//!
//! [`encode`]/[`decode`] turn an [`Event`] stream into a varint-packed
//! byte buffer and back, enabling *offline* race detection: record a
//! production run cheaply (an [`crate::monitor::EventLog`] or a streaming writer), ship
//! the trace, and replay it into the detector elsewhere
//! ([`crate::monitor::replay`]). The detector is a pure function of the
//! serial depth-first event stream, so the offline verdict is identical
//! to the online one (asserted by `tests/replay.rs`).
//!
//! Format: one tag byte per event followed by LEB128-varint fields; `Alloc`
//! carries a length-prefixed UTF-8 name. At paper scale (10⁹ accesses) a
//! read/write event costs 2–6 bytes.

use crate::monitor::{Event, TaskKind};
use futrace_util::ids::{FinishId, LocId, StepId, TaskId};

const TAG_TASK_CREATE: u8 = 1;
const TAG_TASK_END: u8 = 2;
const TAG_FINISH_START: u8 = 3;
const TAG_FINISH_END: u8 = 4;
const TAG_GET: u8 = 5;
const TAG_READ: u8 = 6;
const TAG_WRITE: u8 = 7;
const TAG_ALLOC: u8 = 8;

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A read-only position over the input slice (std-only replacement for
/// `bytes::Bytes`): all reads bounds-check and surface
/// [`DecodeError::Truncated`] instead of panicking.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.data.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn get_varint(buf: &mut Cursor<'_>) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf.get_u8()?;
        if shift >= 64 {
            return Err(DecodeError::Malformed("varint too long"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Decoding failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Buffer ended mid-event.
    Truncated,
    /// Structurally invalid data.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace truncated"),
            DecodeError::Malformed(what) => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn kind_code(k: TaskKind) -> u64 {
    match k {
        TaskKind::Main => 0,
        TaskKind::Async => 1,
        TaskKind::Future => 2,
    }
}

fn kind_from(code: u64) -> Result<TaskKind, DecodeError> {
    Ok(match code {
        0 => TaskKind::Main,
        1 => TaskKind::Async,
        2 => TaskKind::Future,
        _ => return Err(DecodeError::Malformed("task kind")),
    })
}

/// Serializes an event stream.
pub fn encode(events: &[Event]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(events.len() * 4);
    for e in events {
        encode_event(&mut buf, e);
    }
    buf
}

/// Appends one event's encoding to `buf` — the incremental form of
/// [`encode`], used by streaming writers (framed trace chunks are built by
/// calling this per event instead of materializing the whole stream).
pub fn encode_event(buf: &mut Vec<u8>, e: &Event) {
    {
        match e {
            Event::TaskCreate {
                parent,
                child,
                kind,
                ief,
            } => {
                buf.push(TAG_TASK_CREATE);
                put_varint(buf, u64::from(parent.0));
                put_varint(buf, u64::from(child.0));
                put_varint(buf, kind_code(*kind));
                put_varint(buf, u64::from(ief.0));
            }
            Event::TaskEnd(t) => {
                buf.push(TAG_TASK_END);
                put_varint(buf, u64::from(t.0));
            }
            Event::FinishStart(t, f) => {
                buf.push(TAG_FINISH_START);
                put_varint(buf, u64::from(t.0));
                put_varint(buf, u64::from(f.0));
            }
            Event::FinishEnd(t, f, joined) => {
                buf.push(TAG_FINISH_END);
                put_varint(buf, u64::from(t.0));
                put_varint(buf, u64::from(f.0));
                put_varint(buf, joined.len() as u64);
                for j in joined {
                    put_varint(buf, u64::from(j.0));
                }
            }
            Event::Get { waiter, awaited } => {
                buf.push(TAG_GET);
                put_varint(buf, u64::from(waiter.0));
                put_varint(buf, u64::from(awaited.0));
            }
            Event::Read(t, l) => {
                buf.push(TAG_READ);
                put_varint(buf, u64::from(t.0));
                put_varint(buf, u64::from(l.0));
            }
            Event::Write(t, l) => {
                buf.push(TAG_WRITE);
                put_varint(buf, u64::from(t.0));
                put_varint(buf, u64::from(l.0));
            }
            Event::Alloc(base, n, name) => {
                buf.push(TAG_ALLOC);
                put_varint(buf, u64::from(base.0));
                put_varint(buf, u64::from(*n));
                put_varint(buf, name.len() as u64);
                buf.extend_from_slice(name.as_bytes());
            }
        }
    }
}

fn id32(v: u64, what: &'static str) -> Result<u32, DecodeError> {
    u32::try_from(v).map_err(|_| DecodeError::Malformed(what))
}

/// Deserializes an event stream produced by [`encode`].
///
/// Implemented over [`decode_iter`]; the whole stream is materialized, so
/// prefer the iterator for large traces (replay does not need the `Vec`).
pub fn decode(data: &[u8]) -> Result<Vec<Event>, DecodeError> {
    decode_iter(data).collect()
}

/// Lazily decodes an event stream: yields one event at a time without
/// materializing a `Vec`, so offline analysis can stream arbitrarily large
/// traces. After the first `Err` the iterator fuses (yields `None`), since
/// the cursor position is no longer trustworthy.
pub fn decode_iter(data: &[u8]) -> DecodeIter<'_> {
    DecodeIter {
        buf: Cursor::new(data),
        failed: false,
    }
}

/// Iterator state for [`decode_iter`].
pub struct DecodeIter<'a> {
    buf: Cursor<'a>,
    failed: bool,
}

impl Iterator for DecodeIter<'_> {
    type Item = Result<Event, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || !self.buf.has_remaining() {
            return None;
        }
        match decode_event(&mut self.buf) {
            Ok(e) => Some(Ok(e)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Decodes the single event at the cursor position.
fn decode_event(buf: &mut Cursor<'_>) -> Result<Event, DecodeError> {
    {
        let tag = buf.get_u8()?;
        let e = match tag {
            TAG_TASK_CREATE => Event::TaskCreate {
                parent: TaskId(id32(get_varint(buf)?, "parent")?),
                child: TaskId(id32(get_varint(buf)?, "child")?),
                kind: kind_from(get_varint(buf)?)?,
                ief: FinishId(id32(get_varint(buf)?, "ief")?),
            },
            TAG_TASK_END => Event::TaskEnd(TaskId(id32(get_varint(buf)?, "task")?)),
            TAG_FINISH_START => Event::FinishStart(
                TaskId(id32(get_varint(buf)?, "task")?),
                FinishId(id32(get_varint(buf)?, "finish")?),
            ),
            TAG_FINISH_END => {
                let t = TaskId(id32(get_varint(buf)?, "task")?);
                let f = FinishId(id32(get_varint(buf)?, "finish")?);
                let n = get_varint(buf)?;
                let mut joined = Vec::with_capacity(n.min(1 << 20) as usize);
                for _ in 0..n {
                    joined.push(TaskId(id32(get_varint(buf)?, "joined")?));
                }
                Event::FinishEnd(t, f, joined)
            }
            TAG_GET => Event::Get {
                waiter: TaskId(id32(get_varint(buf)?, "waiter")?),
                awaited: TaskId(id32(get_varint(buf)?, "awaited")?),
            },
            TAG_READ => Event::Read(
                TaskId(id32(get_varint(buf)?, "task")?),
                LocId(id32(get_varint(buf)?, "loc")?),
            ),
            TAG_WRITE => Event::Write(
                TaskId(id32(get_varint(buf)?, "task")?),
                LocId(id32(get_varint(buf)?, "loc")?),
            ),
            TAG_ALLOC => {
                let base = LocId(id32(get_varint(buf)?, "base")?);
                let n = id32(get_varint(buf)?, "len")?;
                let name_len = get_varint(buf)? as usize;
                let name_bytes = buf.take(name_len)?;
                let name = std::str::from_utf8(name_bytes)
                    .map_err(|_| DecodeError::Malformed("alloc name utf8"))?
                    .to_string();
                Event::Alloc(base, n, name)
            }
            _ => return Err(DecodeError::Malformed("unknown tag")),
        };
        let _ = StepId(0); // (steps are derived, never serialized)
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::EventLog;
    use crate::{run_serial, TaskCtx};
    use futrace_util::propcheck::{self, strategies, Config};

    #[test]
    fn roundtrip_real_program() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(4, 0u64, "grid");
            ctx.finish(|ctx| {
                let a2 = a.clone();
                ctx.async_task(move |ctx| a2.write(ctx, 0, 1));
            });
            let f = ctx.future(|_| 7u8);
            ctx.get(&f);
            let _ = a.read(ctx, 0);
        });
        let bytes = encode(&log.events);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, log.events);
        // The format is compact: a handful of bytes per event.
        assert!(bytes.len() <= log.events.len() * 12 + 16);
    }

    #[test]
    fn truncated_input_errors() {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let v = ctx.shared_var(0u64, "v");
            v.write(ctx, 1);
        });
        let bytes = encode(&log.events);
        for cut in 1..bytes.len() {
            // Every strict prefix either decodes fewer events or errors —
            // never panics.
            let _ = decode(&bytes[..cut]);
        }
        assert_eq!(decode(&[99]), Err(DecodeError::Malformed("unknown tag")));
        assert!(decode(&[TAG_READ]).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cursor = Cursor::new(&buf);
            assert_eq!(get_varint(&mut cursor).unwrap(), v);
            assert!(!cursor.has_remaining());
        }
        // An unterminated continuation chain longer than 10 bytes is
        // malformed, not an infinite loop.
        assert_eq!(
            get_varint(&mut Cursor::new(&[0x80; 11])),
            Err(DecodeError::Malformed("varint too long"))
        );
    }

    #[test]
    fn decode_iter_is_lazy_and_fuses_on_error() {
        let events = vec![
            Event::Write(TaskId(1), LocId(0)),
            Event::Read(TaskId(2), LocId(1)),
            Event::TaskEnd(TaskId(2)),
        ];
        let mut bytes = encode(&events);
        // Streaming decode yields the same events one at a time.
        let streamed: Vec<Event> = decode_iter(&bytes).map(|e| e.unwrap()).collect();
        assert_eq!(streamed, events);

        // A bad tag mid-stream: events before it are still yielded, then one
        // error, then the iterator fuses.
        bytes.push(99);
        bytes.push(0);
        let mut it = decode_iter(&bytes);
        for want in &events {
            assert_eq!(it.next().unwrap().unwrap(), *want);
        }
        assert_eq!(
            it.next(),
            Some(Err(DecodeError::Malformed("unknown tag")))
        );
        assert_eq!(it.next(), None, "iterator fuses after an error");
    }

    #[test]
    fn decode_matches_decode_iter() {
        let events = vec![
            Event::Alloc(LocId(0), 3, "m".into()),
            Event::Write(TaskId(0), LocId(2)),
        ];
        let bytes = encode(&events);
        assert_eq!(
            decode(&bytes).unwrap(),
            decode_iter(&bytes).collect::<Result<Vec<_>, _>>().unwrap()
        );
    }

    /// Arbitrary event streams round-trip losslessly. The generated streams
    /// are syntactically arbitrary (not necessarily well-formed programs);
    /// the codec must not care about well-formedness.
    #[test]
    fn roundtrip_arbitrary() {
        let strat = strategies::vec_of(
            strategies::tuple4(
                strategies::u8_range(0..8),
                strategies::u32_range(0..1000),
                strategies::u32_range(0..1000),
                strategies::u32_range(0..100),
            ),
            0,
            200,
        );
        propcheck::check(&Config::default(), &strat, |seed_events| {
            let events: Vec<Event> = seed_events
                .into_iter()
                .map(|(k, a, b, c)| match k {
                    0 => Event::TaskCreate {
                        parent: TaskId(a),
                        child: TaskId(b),
                        kind: TaskKind::Future,
                        ief: FinishId(c),
                    },
                    1 => Event::TaskEnd(TaskId(a)),
                    2 => Event::FinishStart(TaskId(a), FinishId(c)),
                    3 => Event::FinishEnd(TaskId(a), FinishId(c), vec![TaskId(b), TaskId(b + 1)]),
                    4 => Event::Get {
                        waiter: TaskId(a),
                        awaited: TaskId(b),
                    },
                    5 => Event::Read(TaskId(a), LocId(b)),
                    6 => Event::Write(TaskId(a), LocId(b)),
                    _ => Event::Alloc(LocId(a), c, format!("alloc{b}")),
                })
                .collect();
            let bytes = encode(&events);
            assert_eq!(decode(&bytes).unwrap(), events);
        });
    }
}
