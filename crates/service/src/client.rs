//! `tracetool client`: streams a trace to a `tracetool serve` daemon.
//!
//! The client is deliberately dumb: it slices the trace into chunk
//! payloads (reusing the `.ftrc` chunking when the file is framed),
//! then speaks the lock-step protocol — `Open`/`Hello`, one
//! `Chunk`/`VerdictDelta` pair per chunk, `Finish`/`Final` — and hands
//! back the daemon's verdict text verbatim. On resume it re-streams the
//! full trace; the daemon's session skips the chunks its checkpoint
//! already completed.
//!
//! That no-local-state resume design is what makes reconnection simple:
//! when a connection tears mid-stream (or the daemon sheds the session
//! with `Busy`), the client re-dials under [`Backoff`], re-`Open`s the
//! same session name, and re-streams from chunk 0 — a `--resume` daemon
//! answers `Hello { resumed_chunks > 0 }` and skips the prefix its
//! checkpoint already covers. [`ClientOptions::retries`] bounds the
//! reconnects and [`ClientOptions::retry_budget_ms`] the total elapsed
//! time; exhausting either yields the structured
//! [`ClientError::RetriesExhausted`].

use futrace_offline::{framed, trace_events};
use futrace_runtime::trace;
use futrace_util::faultinject::{
    is_transient, write_all_with_retry, Backoff, FaultyReader, FaultyWriter, NetFaults,
};
use futrace_util::wire::proto::{encode_frame, read_frame, write_frame, ErrorCode, Message, ProtoError};
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Retry budget for absorbing transient faults *within* one connection
/// (injected `WouldBlock` bursts); reconnection has its own budget.
const IN_CONN_RETRIES: u32 = 8;

/// Configuration for one streamed analysis.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Ask the daemon for the sharded backend with this many workers.
    pub shards: Option<usize>,
    /// Ask the daemon to checkpoint every N chunks.
    pub checkpoint_every: Option<u64>,
    /// Ask the daemon to skip damaged chunks instead of failing.
    pub lenient: bool,
    /// Session name — keys the daemon's checkpoint file, so resuming a
    /// suspended session means reconnecting with the same name.
    pub trace_name: String,
    /// Re-chunk the trace to this many events per chunk before sending
    /// (default: ship the file's own chunking, or one chunk if flat).
    pub chunk_events: Option<usize>,
    /// Send `Suspend` after this many chunks instead of finishing
    /// (exercises suspend/resume; used by tests and `--suspend-after`).
    pub suspend_after: Option<u64>,
    /// Reconnect attempts after a torn connection or `Busy` shed
    /// (0 = fail on the first fault, the historical behavior).
    pub retries: u32,
    /// Wall-clock cap across all attempts; once it would be exceeded the
    /// client gives up even with retries left.
    pub retry_budget_ms: Option<u64>,
    /// Seed for per-attempt network fault injection (chaos testing). The
    /// final allowed attempt always runs fault-free, so a bounded retry
    /// budget terminates deterministically under injection.
    pub inject_net: Option<u64>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            addr: String::new(),
            shards: None,
            checkpoint_every: None,
            lenient: false,
            trace_name: "session".to_string(),
            chunk_events: None,
            suspend_after: None,
            retries: 0,
            retry_budget_ms: None,
            inject_net: None,
        }
    }
}

/// How a streamed session ended.
#[derive(Clone, Debug)]
pub enum ClientOutcome {
    /// The daemon analyzed everything and produced a verdict.
    Finished {
        /// Total races detected.
        races: u64,
        /// The verdict text, byte-identical to one-shot `analyze`.
        verdict: String,
        /// Chunks the daemon's checkpoint had already completed when the
        /// session opened (0 for a fresh session).
        resumed_chunks: u64,
        /// Chunks this client sent.
        chunks_sent: u64,
        /// Connection attempts consumed (1 = no reconnects).
        attempts: u32,
    },
    /// The session was suspended to a daemon-side checkpoint.
    Suspended {
        /// Chunks fed before suspension.
        chunks: u64,
    },
}

/// Client-side failure: local I/O, wire damage, a structured error from
/// the daemon, or a protocol-shape violation.
#[derive(Debug)]
pub enum ClientError {
    /// Local socket or file I/O failed.
    Io(std::io::Error),
    /// The reply stream was damaged.
    Proto(ProtoError),
    /// The daemon reported a structured error.
    Remote {
        /// Error category from the daemon.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon replied with an unexpected message kind.
    Protocol(&'static str),
    /// The local trace could not be decoded for re-chunking.
    Trace(String),
    /// The daemon shed this session for load and the retry budget could
    /// not absorb it.
    Busy {
        /// The daemon's advisory back-off hint.
        retry_after_ms: u64,
    },
    /// The reconnect budget ran out; `last` describes the final failure.
    RetriesExhausted {
        /// Connection attempts made before giving up.
        attempts: u32,
        /// Rendered form of the last attempt's error.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "damaged reply stream: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "daemon error ({code}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Trace(e) => write!(f, "invalid trace: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "daemon busy: retry after {retry_after_ms}ms")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Slices a trace blob into wire chunk payloads (v1-encoded event runs).
fn chunk_payloads(opts: &ClientOptions, blob: &[u8]) -> Result<Vec<Vec<u8>>, ClientError> {
    if let Some(per_chunk) = opts.chunk_events {
        let per_chunk = per_chunk.max(1);
        let mut events = Vec::new();
        for item in trace_events(blob, opts.lenient) {
            match item {
                Ok(e) => events.push(e),
                Err(e) => return Err(ClientError::Trace(e.to_string())),
            }
        }
        if events.is_empty() {
            return Ok(vec![Vec::new()]);
        }
        return Ok(events.chunks(per_chunk).map(trace::encode).collect());
    }
    if framed::is_framed(blob) {
        let mut payloads = Vec::new();
        for chunk in framed::chunks(blob) {
            match chunk {
                Ok(c) => payloads.push(c.payload.to_vec()),
                // Framing damage cannot be resynced locally; report it
                // rather than shipping a torn stream.
                Err(e) => return Err(ClientError::Trace(e.to_string())),
            }
        }
        if payloads.is_empty() {
            payloads.push(Vec::new());
        }
        return Ok(payloads);
    }
    // Flat v1: the whole body is one chunk payload.
    Ok(vec![blob.to_vec()])
}

/// Absorbs transient read errors (`WouldBlock`/`TimedOut` bursts from
/// fault injection) with a bounded backoff so a flaky read becomes a
/// short stall instead of a torn connection. `Interrupted` is already
/// retried for free by `read_frame`'s header loop.
struct PatientReader<R> {
    inner: R,
}

impl<R: Read> Read for PatientReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut backoff = Backoff::new(0xC11E_47, IN_CONN_RETRIES, Duration::from_millis(1));
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if is_transient(e.kind())
                        && e.kind() != std::io::ErrorKind::Interrupted =>
                {
                    match backoff.next_delay() {
                        Some(d) => std::thread::sleep(d),
                        None => return Err(e),
                    }
                }
                other => return other,
            }
        }
    }
}

/// One dialed connection: a fault-wrapped read half and write half of
/// the same socket. With no injection the wrappers pass straight through.
struct Wire {
    reader: PatientReader<FaultyReader<TcpStream>>,
    writer: FaultyWriter<TcpStream>,
}

impl Wire {
    fn send(&mut self, msg: &Message) -> Result<(), ClientError> {
        let frame = encode_frame(msg);
        let mut backoff = Backoff::new(0x5E_D1A1, IN_CONN_RETRIES, Duration::from_millis(1));
        write_all_with_retry(&mut self.writer, &frame, &mut backoff)?;
        self.writer.flush()?;
        Ok(())
    }

    fn expect_reply(&mut self) -> Result<Message, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(Message::Error { code, message }) => Err(ClientError::Remote { code, message }),
            Some(Message::Busy { retry_after_ms }) => Err(ClientError::Busy { retry_after_ms }),
            Some(msg) => Ok(msg),
            // Mid-session EOF is a torn connection (daemon killed or
            // connection dropped), not a protocol-shape violation: surface
            // it as I/O so the reconnect loop treats it as retryable.
            None => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))),
        }
    }
}

fn connect(opts: &ClientOptions, attempt: u32) -> Result<Wire, ClientError> {
    let stream = TcpStream::connect(&opts.addr)?;
    let _ = stream.set_nodelay(true);
    let faults = match opts.inject_net {
        // The final allowed attempt runs fault-free so a bounded retry
        // budget terminates deterministically under injection.
        Some(seed) if opts.retries == 0 || attempt < opts.retries => {
            NetFaults::from_seed(seed, attempt as u64)
        }
        _ => NetFaults::default(),
    };
    let read_half = stream.try_clone()?;
    Ok(Wire {
        reader: PatientReader {
            inner: FaultyReader::new(read_half, faults.read),
        },
        writer: FaultyWriter::new(stream, faults.write),
    })
}

/// Is this failure worth re-dialing for? Torn connections and damaged
/// reply streams are; structured daemon errors and local trace problems
/// are permanent. `Busy` is retryable but carries its own delay floor.
fn retry_floor(err: &ClientError) -> Option<Duration> {
    match err {
        ClientError::Io(_) | ClientError::Proto(_) => Some(Duration::ZERO),
        ClientError::Busy { retry_after_ms } => Some(Duration::from_millis(*retry_after_ms)),
        _ => None,
    }
}

/// Streams `blob` to the daemon at `opts.addr` and returns its verdict
/// (or the suspension acknowledgement). A torn connection or `Busy` shed
/// is retried up to `opts.retries` times under bounded backoff; each
/// retry re-dials, re-`Open`s the same session name, and re-streams from
/// chunk 0, relying on the daemon's checkpoint to skip the completed
/// prefix (or recompute it — the verdict is identical either way).
pub fn stream_trace(opts: &ClientOptions, blob: &[u8]) -> Result<ClientOutcome, ClientError> {
    let payloads = chunk_payloads(opts, blob)?;
    let deadline = opts
        .retry_budget_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut backoff = Backoff::new(
        opts.inject_net.unwrap_or(0x7E7).wrapping_add(1),
        opts.retries,
        Duration::from_millis(5),
    );
    let mut attempt: u32 = 0;
    loop {
        match stream_once(opts, &payloads, attempt) {
            Ok(outcome) => return Ok(outcome),
            Err(e) => {
                let floor = match retry_floor(&e) {
                    Some(floor) if opts.retries > 0 => floor,
                    // Permanent failure, or retries disabled: report the
                    // raw error (the historical single-shot behavior).
                    _ => return Err(e),
                };
                let give_up = |attempt: u32, e: ClientError| {
                    if let ClientError::Busy { .. } = e {
                        // Keep the structured Busy so callers can map it
                        // to its own exit code.
                        e
                    } else {
                        ClientError::RetriesExhausted {
                            attempts: attempt + 1,
                            last: e.to_string(),
                        }
                    }
                };
                let delay = match backoff.next_delay() {
                    Some(d) => d.max(floor),
                    None => return Err(give_up(attempt, e)),
                };
                if let Some(deadline) = deadline {
                    if Instant::now() + delay > deadline {
                        return Err(give_up(attempt, e));
                    }
                }
                std::thread::sleep(delay);
                attempt += 1;
            }
        }
    }
}

/// One full connect → Open → stream → Finish pass.
fn stream_once(
    opts: &ClientOptions,
    payloads: &[Vec<u8>],
    attempt: u32,
) -> Result<ClientOutcome, ClientError> {
    let mut wire = connect(opts, attempt)?;

    wire.send(&Message::Open {
        shards: opts.shards.unwrap_or(0) as u64,
        checkpoint_every: opts.checkpoint_every.unwrap_or(0),
        lenient: opts.lenient,
        trace_name: opts.trace_name.clone(),
    })?;
    let resumed_chunks = match wire.expect_reply()? {
        Message::Hello { resumed_chunks, .. } => resumed_chunks,
        _ => return Err(ClientError::Protocol("expected Hello")),
    };

    let mut sent = 0u64;
    for payload in payloads {
        if opts.suspend_after == Some(sent) {
            return suspend(&mut wire, sent);
        }
        wire.send(&Message::Chunk {
            seq: sent,
            payload: payload.clone(),
        })?;
        match wire.expect_reply()? {
            Message::VerdictDelta { chunks, .. } => {
                if chunks != sent + 1 {
                    return Err(ClientError::Protocol("delta out of step"));
                }
            }
            // The daemon drained or idle-evicted us mid-stream: the
            // session is parked in a checkpoint, not lost.
            Message::Suspended { chunks } => return Ok(ClientOutcome::Suspended { chunks }),
            _ => return Err(ClientError::Protocol("expected VerdictDelta")),
        }
        sent += 1;
    }
    if opts.suspend_after == Some(sent) {
        return suspend(&mut wire, sent);
    }

    wire.send(&Message::Finish)?;
    match wire.expect_reply()? {
        Message::Final { races, verdict } => Ok(ClientOutcome::Finished {
            races,
            verdict,
            resumed_chunks,
            chunks_sent: sent,
            attempts: attempt + 1,
        }),
        Message::Suspended { chunks } => Ok(ClientOutcome::Suspended { chunks }),
        _ => Err(ClientError::Protocol("expected Final")),
    }
}

fn suspend(wire: &mut Wire, sent: u64) -> Result<ClientOutcome, ClientError> {
    wire.send(&Message::Suspend)?;
    match wire.expect_reply()? {
        Message::Suspended { chunks } => {
            let _ = sent;
            Ok(ClientOutcome::Suspended { chunks })
        }
        _ => Err(ClientError::Protocol("expected Suspended")),
    }
}

/// Asks the daemon at `addr` to drain and exit. The daemon sends no
/// reply; clean EOF is success.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &Message::Shutdown)?;
    let _ = stream.flush();
    match read_frame(&mut stream) {
        Ok(None) => Ok(()),
        Ok(Some(Message::Error { code, message })) => Err(ClientError::Remote { code, message }),
        Ok(Some(_)) => Err(ClientError::Protocol("unexpected reply to Shutdown")),
        // The daemon may tear the socket down instead of a clean FIN.
        Err(ProtoError::Io(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}
