//! `tracetool client`: streams a trace to a `tracetool serve` daemon.
//!
//! The client is deliberately dumb: it slices the trace into chunk
//! payloads (reusing the `.ftrc` chunking when the file is framed),
//! then speaks the lock-step protocol — `Open`/`Hello`, one
//! `Chunk`/`VerdictDelta` pair per chunk, `Finish`/`Final` — and hands
//! back the daemon's verdict text verbatim. On resume it re-streams the
//! full trace; the daemon's session skips the chunks its checkpoint
//! already completed.

use futrace_offline::{framed, trace_events};
use futrace_runtime::trace;
use futrace_util::wire::proto::{read_frame, write_frame, ErrorCode, Message, ProtoError};
use std::fmt;
use std::io::Write as _;
use std::net::TcpStream;

/// Configuration for one streamed analysis.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Ask the daemon for the sharded backend with this many workers.
    pub shards: Option<usize>,
    /// Ask the daemon to checkpoint every N chunks.
    pub checkpoint_every: Option<u64>,
    /// Ask the daemon to skip damaged chunks instead of failing.
    pub lenient: bool,
    /// Session name — keys the daemon's checkpoint file, so resuming a
    /// suspended session means reconnecting with the same name.
    pub trace_name: String,
    /// Re-chunk the trace to this many events per chunk before sending
    /// (default: ship the file's own chunking, or one chunk if flat).
    pub chunk_events: Option<usize>,
    /// Send `Suspend` after this many chunks instead of finishing
    /// (exercises suspend/resume; used by tests and `--suspend-after`).
    pub suspend_after: Option<u64>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            addr: String::new(),
            shards: None,
            checkpoint_every: None,
            lenient: false,
            trace_name: "session".to_string(),
            chunk_events: None,
            suspend_after: None,
        }
    }
}

/// How a streamed session ended.
#[derive(Clone, Debug)]
pub enum ClientOutcome {
    /// The daemon analyzed everything and produced a verdict.
    Finished {
        /// Total races detected.
        races: u64,
        /// The verdict text, byte-identical to one-shot `analyze`.
        verdict: String,
        /// Chunks the daemon's checkpoint had already completed when the
        /// session opened (0 for a fresh session).
        resumed_chunks: u64,
        /// Chunks this client sent.
        chunks_sent: u64,
    },
    /// The session was suspended to a daemon-side checkpoint.
    Suspended {
        /// Chunks fed before suspension.
        chunks: u64,
    },
}

/// Client-side failure: local I/O, wire damage, a structured error from
/// the daemon, or a protocol-shape violation.
#[derive(Debug)]
pub enum ClientError {
    /// Local socket or file I/O failed.
    Io(std::io::Error),
    /// The reply stream was damaged.
    Proto(ProtoError),
    /// The daemon reported a structured error.
    Remote {
        /// Error category from the daemon.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon replied with an unexpected message kind.
    Protocol(&'static str),
    /// The local trace could not be decoded for re-chunking.
    Trace(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "damaged reply stream: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "daemon error ({code}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Trace(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Slices a trace blob into wire chunk payloads (v1-encoded event runs).
fn chunk_payloads(opts: &ClientOptions, blob: &[u8]) -> Result<Vec<Vec<u8>>, ClientError> {
    if let Some(per_chunk) = opts.chunk_events {
        let per_chunk = per_chunk.max(1);
        let mut events = Vec::new();
        for item in trace_events(blob, opts.lenient) {
            match item {
                Ok(e) => events.push(e),
                Err(e) => return Err(ClientError::Trace(e.to_string())),
            }
        }
        if events.is_empty() {
            return Ok(vec![Vec::new()]);
        }
        return Ok(events.chunks(per_chunk).map(trace::encode).collect());
    }
    if framed::is_framed(blob) {
        let mut payloads = Vec::new();
        for chunk in framed::chunks(blob) {
            match chunk {
                Ok(c) => payloads.push(c.payload.to_vec()),
                // Framing damage cannot be resynced locally; report it
                // rather than shipping a torn stream.
                Err(e) => return Err(ClientError::Trace(e.to_string())),
            }
        }
        if payloads.is_empty() {
            payloads.push(Vec::new());
        }
        return Ok(payloads);
    }
    // Flat v1: the whole body is one chunk payload.
    Ok(vec![blob.to_vec()])
}

fn expect_reply(stream: &mut TcpStream) -> Result<Message, ClientError> {
    match read_frame(stream)? {
        Some(Message::Error { code, message }) => Err(ClientError::Remote { code, message }),
        Some(msg) => Ok(msg),
        None => Err(ClientError::Protocol("daemon closed the connection")),
    }
}

/// Streams `blob` to the daemon at `opts.addr` and returns its verdict
/// (or the suspension acknowledgement).
pub fn stream_trace(opts: &ClientOptions, blob: &[u8]) -> Result<ClientOutcome, ClientError> {
    let payloads = chunk_payloads(opts, blob)?;
    let mut stream = TcpStream::connect(&opts.addr)?;
    let _ = stream.set_nodelay(true);

    write_frame(
        &mut stream,
        &Message::Open {
            shards: opts.shards.unwrap_or(0) as u64,
            checkpoint_every: opts.checkpoint_every.unwrap_or(0),
            lenient: opts.lenient,
            trace_name: opts.trace_name.clone(),
        },
    )?;
    let resumed_chunks = match expect_reply(&mut stream)? {
        Message::Hello { resumed_chunks, .. } => resumed_chunks,
        _ => return Err(ClientError::Protocol("expected Hello")),
    };

    let mut sent = 0u64;
    for payload in &payloads {
        if opts.suspend_after == Some(sent) {
            return suspend(&mut stream, sent);
        }
        write_frame(
            &mut stream,
            &Message::Chunk {
                seq: sent,
                payload: payload.clone(),
            },
        )?;
        match expect_reply(&mut stream)? {
            Message::VerdictDelta { chunks, .. } => {
                if chunks != sent + 1 {
                    return Err(ClientError::Protocol("delta out of step"));
                }
            }
            _ => return Err(ClientError::Protocol("expected VerdictDelta")),
        }
        sent += 1;
    }
    if opts.suspend_after == Some(sent) {
        return suspend(&mut stream, sent);
    }

    write_frame(&mut stream, &Message::Finish)?;
    match expect_reply(&mut stream)? {
        Message::Final { races, verdict } => Ok(ClientOutcome::Finished {
            races,
            verdict,
            resumed_chunks,
            chunks_sent: sent,
        }),
        _ => Err(ClientError::Protocol("expected Final")),
    }
}

fn suspend(stream: &mut TcpStream, sent: u64) -> Result<ClientOutcome, ClientError> {
    write_frame(stream, &Message::Suspend)?;
    match expect_reply(stream)? {
        Message::Suspended { chunks } => {
            let _ = sent;
            Ok(ClientOutcome::Suspended { chunks })
        }
        _ => Err(ClientError::Protocol("expected Suspended")),
    }
}

/// Asks the daemon at `addr` to drain and exit. The daemon sends no
/// reply; clean EOF is success.
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &Message::Shutdown)?;
    let _ = stream.flush();
    match read_frame(&mut stream) {
        Ok(None) => Ok(()),
        Ok(Some(Message::Error { code, message })) => Err(ClientError::Remote { code, message }),
        Ok(Some(_)) => Err(ClientError::Protocol("unexpected reply to Shutdown")),
        // The daemon may tear the socket down instead of a clean FIN.
        Err(ProtoError::Io(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}
