//! Session layer and daemon for incremental trace analysis.
//!
//! This crate turns the one-shot "read a trace, run a backend, print a
//! verdict" pipeline into a long-lived service:
//!
//! * [`session`] — [`Session`] owns one incremental analysis: it accepts
//!   trace chunks (or a whole blob / event list), emits a
//!   [`VerdictDelta`] per chunk, can suspend to an FCKP checkpoint and
//!   resume with skip-completed-chunk semantics, and finishes through
//!   the serial, sharded, or supervised backend. The `futrace::Analyze`
//!   builder and `tracetool analyze` are thin wrappers over it.
//! * [`server`] — `tracetool serve`: a std-only TCP daemon multiplexing
//!   N concurrent sessions over a fixed worker pool, with bounded-queue
//!   backpressure on accept, graceful drain (every in-flight session is
//!   suspended to its FCKP file), and `--resume` to pick those sessions
//!   back up.
//! * [`client`] — `tracetool client`: streams a trace file to a daemon
//!   chunk by chunk over the framed wire protocol
//!   (`futrace_util::wire::proto`) and returns the final verdict.
//!
//! The verdict text is rendered by [`render_verdict`], shared by the
//! one-shot CLI and the daemon so streamed and batch analysis stay
//! byte-identical — CI diffs them.

pub mod client;
pub mod server;
pub mod session;

pub use client::{shutdown, stream_trace, ClientError, ClientOptions, ClientOutcome};
pub use server::{checkpoint_path, Server, ServeOptions, ServeStats, ServeSummary};
pub use session::{AnalysisOutcome, Session, SessionConfig, SessionError, VerdictDelta};

use futrace_detector::RaceReport;
use std::fmt::Write as _;

/// Renders the race verdict exactly as `tracetool` has always printed
/// it: a leading blank line, the race count with up to five samples, or
/// the clean-verdict line. No trailing newline — callers `println!` the
/// returned string, and the daemon ships it verbatim in `Final` frames,
/// so streamed and one-shot verdict sections diff byte-identical.
pub fn render_verdict(report: &RaceReport) -> String {
    let mut out = String::new();
    if report.has_races() {
        let _ = write!(
            out,
            "\n{} determinacy race(s); first {}:",
            report.total_detected,
            report.races.len().min(5)
        );
        for r in report.races.iter().take(5) {
            let _ = write!(out, "\n  {r}");
        }
    } else {
        let _ = write!(out, "\nno determinacy races: the traced program is determinate");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_verdict_text_is_stable() {
        let report = RaceReport::default();
        assert_eq!(
            render_verdict(&report),
            "\nno determinacy races: the traced program is determinate"
        );
    }
}
