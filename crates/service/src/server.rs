//! `tracetool serve`: a std-only TCP daemon multiplexing analysis
//! sessions over a fixed worker pool.
//!
//! One accepted connection carries one session, spoken in the framed
//! wire protocol of `futrace_util::wire::proto`, strictly lock-step:
//! the client sends one request frame and waits for its reply before
//! sending the next, so a slow analysis naturally backpressures the
//! sender without any windowing. Connections queue into a bounded
//! channel between the accept loop and the workers; when all workers
//! are busy and the queue is full, `accept` itself stops — backpressure
//! reaches all the way to the kernel listen queue.
//!
//! Failure is never silent: damaged frames and protocol violations are
//! answered with structured `Error` frames, a client that vanishes
//! mid-session has its partial work suspended to an FCKP checkpoint
//! file, and a `Shutdown` frame drains the daemon — every in-flight
//! session is suspended the same way, so `serve --resume` can pick all
//! of them back up.
//!
//! Self-protection (chaos hardening):
//!
//! * **Idle eviction** — a session that stops sending for longer than
//!   [`ServeOptions::idle_timeout`] is *suspended to its checkpoint*,
//!   not dropped, so a wedged client costs a worker nothing and loses no
//!   work (the client reconnects and resumes).
//! * **Per-frame write deadline** — [`ServeOptions::io_deadline`] caps
//!   how long a reply write may stall, so a client that stops draining
//!   its socket cannot pin a worker; the session is suspended.
//! * **Load shedding** — past [`ServeOptions::max_sessions`] open
//!   sessions (or a full accept queue) an `Open` is answered with a
//!   structured [`Message::Busy`] frame instead of queueing silently;
//!   the client backs off and retries.
//! * **Fault injection** — [`ServeOptions::inject_net`] wraps every
//!   accepted connection's read/write halves in seeded
//!   `FaultyReader`/`FaultyWriter` schedules for chaos testing.

use crate::render_verdict;
use crate::session::{Session, SessionConfig, SessionError};
use futrace_offline::{channel, Checkpoint};
use futrace_util::faultinject::{
    write_all_with_retry, Backoff, FaultyReader, FaultyWriter, NetFaults,
};
use futrace_util::wire::proto::{
    decode_frame, encode_frame, ErrorCode, Message, ProtoError,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often an idle connection read wakes up to check the drain flag
/// (and the idle deadline).
const DRAIN_POLL: Duration = Duration::from_millis(200);

/// Retry hint carried by load-shedding [`Message::Busy`] replies.
const BUSY_RETRY_AFTER_MS: u64 = 200;

/// Retry budget for reply writes: absorbs injected/transient
/// `WouldBlock` bursts without masking a genuinely stalled client (a
/// real write-deadline expiry persists through every retry).
const WRITE_RETRIES: u32 = 6;

/// Configuration for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to listen on (e.g. `127.0.0.1:7333`; port 0 picks one).
    pub addr: String,
    /// Worker threads — the number of sessions analyzed concurrently.
    pub workers: usize,
    /// Accepted-but-unclaimed connections held between the accept loop
    /// and the workers; beyond this, accepting stops (backpressure).
    pub queue_depth: usize,
    /// Directory for per-session FCKP checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// Reopen matching FCKP files when sessions reconnect.
    pub resume: bool,
    /// Suspend a session to its checkpoint when the client sends nothing
    /// for this long (`None` = never evict).
    pub idle_timeout: Option<Duration>,
    /// Per-frame socket write deadline: a reply write stalled past this
    /// fails and the session is suspended (`None` = block forever).
    pub io_deadline: Option<Duration>,
    /// Open-session quota; an `Open` past it is answered with
    /// [`Message::Busy`] (0 = unlimited).
    pub max_sessions: usize,
    /// Seed for per-connection network fault injection (chaos testing).
    pub inject_net: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            checkpoint_dir: PathBuf::from("."),
            resume: false,
            idle_timeout: None,
            io_deadline: Some(Duration::from_secs(30)),
            max_sessions: 0,
            inject_net: None,
        }
    }
}

/// What the daemon did over its lifetime, reported after drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions that reached `Finish` and got a `Final` verdict.
    pub finished: u64,
    /// Sessions suspended to a checkpoint (explicitly, by client
    /// disappearance, by idle eviction, or by drain).
    pub suspended: u64,
    /// Structured error frames sent.
    pub errors: u64,
    /// `Open`s (or whole connections) shed with a `Busy` reply because a
    /// quota was reached.
    pub busy_rejected: u64,
    /// Of `suspended`, the sessions evicted by the idle timeout.
    pub idle_suspended: u64,
}

/// Drain and quota accounting, surfaced after [`Server::run`].
pub type ServeStats = ServeSummary;

struct ServeState {
    drain: AtomicBool,
    finished: AtomicU64,
    suspended: AtomicU64,
    errors: AtomicU64,
    busy_rejected: AtomicU64,
    idle_suspended: AtomicU64,
    active_sessions: AtomicU64,
    next_session: AtomicU64,
    next_conn: AtomicU64,
    opts: ServeOptions,
}

/// A bound daemon, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listen socket (so callers can learn the picked port
    /// before the daemon starts serving).
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        std::fs::create_dir_all(&opts.checkpoint_dir)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                drain: AtomicBool::new(false),
                finished: AtomicU64::new(0),
                suspended: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                busy_rejected: AtomicU64::new(0),
                idle_suspended: AtomicU64::new(0),
                active_sessions: AtomicU64::new(0),
                next_session: AtomicU64::new(1),
                next_conn: AtomicU64::new(0),
                opts,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends `Shutdown`, then drains: the accept
    /// loop stops, queued and in-flight sessions are suspended to their
    /// checkpoint files, workers exit, and the lifetime summary is
    /// returned.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let local = self.local_addr()?;
        let workers = self.state.opts.workers.max(1);
        let (tx, rx) = channel::bounded::<TcpStream>(self.state.opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            pool.push(std::thread::spawn(move || loop {
                // Hold the lock only for the dequeue: the receiver is
                // single-consumer, the pool shares it via the mutex.
                let conn = { rx.lock().unwrap().recv() };
                match conn {
                    Some(stream) => handle_connection(stream, &state, local),
                    None => break,
                }
            }));
        }

        for stream in self.listener.incoming() {
            if self.state.drain.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if self.state.drain.load(Ordering::SeqCst) {
                // The wake-up connection itself lands here; drop it.
                break;
            }
            // A full queue sheds the connection with a structured Busy
            // instead of parking it (and its client) invisibly.
            match tx.send_timeout(stream, Duration::ZERO) {
                channel::SendTimeout::Sent => {}
                channel::SendTimeout::Full(mut stream) => {
                    self.state.busy_rejected.fetch_add(1, Ordering::SeqCst);
                    let _ = stream.set_write_timeout(Some(DRAIN_POLL));
                    let _ = stream.write_all(&encode_frame(&Message::Busy {
                        retry_after_ms: BUSY_RETRY_AFTER_MS,
                    }));
                }
                channel::SendTimeout::Disconnected(_) => break,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }

        Ok(ServeSummary {
            finished: self.state.finished.load(Ordering::SeqCst),
            suspended: self.state.suspended.load(Ordering::SeqCst),
            errors: self.state.errors.load(Ordering::SeqCst),
            busy_rejected: self.state.busy_rejected.load(Ordering::SeqCst),
            idle_suspended: self.state.idle_suspended.load(Ordering::SeqCst),
        })
    }
}

/// Maps a client-supplied trace name to its checkpoint file, defanging
/// path separators and dotfiles so a hostile name cannot escape the
/// checkpoint directory.
///
/// The sanitized stem carries a CRC-32 of the *raw* name: sanitization
/// is lossy (`a/b` and `a_b` both sanitize to `a_b`), and without the
/// disambiguator two concurrently open sessions with distinct names
/// would silently clobber each other's checkpoints.
pub fn checkpoint_path(dir: &Path, trace_name: &str) -> PathBuf {
    let mut safe: String = trace_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    while safe.starts_with('.') {
        safe.remove(0);
    }
    if safe.is_empty() {
        safe.push_str("session");
    }
    let disambiguator = futrace_util::crc32::crc32(trace_name.as_bytes());
    dir.join(format!("{safe}-{disambiguator:08x}.fckp"))
}

/// Per-connection protocol driver state.
struct Conn {
    session: Option<Session>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    /// True while this connection holds a slot against the
    /// `max_sessions` quota.
    counted: bool,
}

fn handle_connection(stream: TcpStream, state: &ServeState, local: SocketAddr) {
    let mut conn = Conn {
        session: None,
        checkpoint: None,
        checkpoint_every: None,
        counted: false,
    };
    drive_connection(stream, &mut conn, state, local);
    if conn.counted {
        state.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

fn drive_connection(stream: TcpStream, conn: &mut Conn, state: &ServeState, local: SocketAddr) {
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let _ = stream.set_write_timeout(state.opts.io_deadline);
    let _ = stream.set_nodelay(true);
    // Both halves always go through the fault wrappers; without
    // --inject-net the schedules are empty and the wrappers are
    // pass-through. Socket timeouts live on the fd, shared by the clone.
    let lane = state.next_conn.fetch_add(1, Ordering::SeqCst);
    let faults = state
        .opts
        .inject_net
        .map(|seed| NetFaults::from_seed(seed, lane))
        .unwrap_or_default();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FaultyReader::new(read_half, faults.read);
    let mut writer = FaultyWriter::new(stream, faults.write);
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    let mut last_activity = Instant::now();

    loop {
        // Drain every complete frame already buffered.
        loop {
            match decode_frame(&buf) {
                Ok((msg, consumed)) => {
                    buf.drain(..consumed);
                    match dispatch(msg, conn, &mut writer, state, local) {
                        Flow::Continue => {}
                        Flow::Close => {
                            // Whatever closed the conversation (normal
                            // completion leaves no session; a torn or
                            // deadline-expired reply write does), any
                            // still-open session's work is preserved.
                            suspend_to_disk(conn, state);
                            return;
                        }
                    }
                }
                Err(ProtoError::Truncated(_)) => break, // need more bytes
                Err(e) => {
                    // Structural damage (bad CRC, oversized, malformed):
                    // the stream cannot be resynced. Report, preserve the
                    // session, close.
                    send_error(&mut writer, state, ErrorCode::Protocol, &e.to_string());
                    suspend_to_disk(conn, state);
                    return;
                }
            }
        }

        match reader.read(&mut scratch) {
            Ok(0) => {
                // Client went away mid-session: preserve its work.
                suspend_to_disk(conn, state);
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&scratch[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.drain.load(Ordering::SeqCst) {
                    // Drain: suspend in-flight work, tell the client.
                    let chunks = conn.session.as_ref().map_or(0, |s| s.chunks());
                    if suspend_to_disk(conn, state) {
                        let _ = write_reply(&mut writer, &Message::Suspended { chunks });
                    }
                    return;
                }
                if let Some(limit) = state.opts.idle_timeout {
                    if last_activity.elapsed() >= limit {
                        // Idle eviction: suspend, don't drop — the wedged
                        // client's work survives in the checkpoint and a
                        // reconnect resumes it.
                        let chunks = conn.session.as_ref().map_or(0, |s| s.chunks());
                        if suspend_to_disk(conn, state) {
                            state.idle_suspended.fetch_add(1, Ordering::SeqCst);
                            let _ =
                                write_reply(&mut writer, &Message::Suspended { chunks });
                        }
                        return;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                suspend_to_disk(conn, state);
                return;
            }
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn dispatch<W: Write>(
    msg: Message,
    conn: &mut Conn,
    stream: &mut W,
    state: &ServeState,
    local: SocketAddr,
) -> Flow {
    match msg {
        Message::Open {
            shards,
            checkpoint_every,
            lenient,
            trace_name,
        } => {
            if conn.session.is_some() {
                send_error(stream, state, ErrorCode::Protocol, "session already open");
                return Flow::Close;
            }
            if state.drain.load(Ordering::SeqCst) {
                send_error(stream, state, ErrorCode::Draining, "daemon is draining");
                return Flow::Close;
            }
            // Session quota: shed with a structured Busy instead of
            // queueing. The slot is claimed atomically so concurrent
            // Opens cannot oversubscribe, and released when the
            // connection ends.
            if state.opts.max_sessions > 0 {
                let quota = state.opts.max_sessions as u64;
                let claimed = state.active_sessions.fetch_update(
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    |n| (n < quota).then_some(n + 1),
                );
                if claimed.is_err() {
                    state.busy_rejected.fetch_add(1, Ordering::SeqCst);
                    let _ = write_reply(
                        stream,
                        &Message::Busy {
                            retry_after_ms: BUSY_RETRY_AFTER_MS,
                        },
                    );
                    return Flow::Close;
                }
                conn.counted = true;
            }
            let cfg = SessionConfig {
                shards: (shards > 0).then_some(shards as usize),
                checkpoint_every: (checkpoint_every > 0).then_some(checkpoint_every),
                lenient,
                ..SessionConfig::default()
            };
            conn.checkpoint_every = (checkpoint_every > 0).then_some(checkpoint_every);
            let path = checkpoint_path(&state.opts.checkpoint_dir, &trace_name);
            let session = if state.opts.resume && path.exists() {
                match std::fs::read(&path).map_err(|e| e.to_string()).and_then(|d| {
                    Checkpoint::decode(&d).map_err(|e| e.to_string())
                }) {
                    Ok(cp) => Session::open_resumed(cfg, cp),
                    Err(e) => {
                        send_error(
                            stream,
                            state,
                            ErrorCode::Internal,
                            &format!("cannot reopen checkpoint: {e}"),
                        );
                        return Flow::Close;
                    }
                }
            } else {
                Session::open(cfg)
            };
            match session {
                Ok(session) => {
                    let id = state.next_session.fetch_add(1, Ordering::SeqCst);
                    let resumed = session.resumed_chunks();
                    conn.session = Some(session);
                    conn.checkpoint = Some(path);
                    write_reply(
                        stream,
                        &Message::Hello {
                            session: id,
                            resumed_chunks: resumed,
                        },
                    )
                }
                Err(e) => {
                    send_error(stream, state, ErrorCode::Analysis, &e.to_string());
                    Flow::Close
                }
            }
        }
        Message::Chunk { seq, payload } => {
            let Some(session) = conn.session.as_mut() else {
                send_error(stream, state, ErrorCode::Protocol, "chunk before open");
                return Flow::Close;
            };
            if seq != session.chunks() {
                let msg = format!(
                    "out-of-order chunk: got seq {seq}, expected {}",
                    session.chunks()
                );
                send_error(stream, state, ErrorCode::Protocol, &msg);
                suspend_to_disk(conn, state);
                return Flow::Close;
            }
            match session.feed_chunk(&payload) {
                Ok(delta) => {
                    // Periodic durability: cut a checkpoint at the
                    // configured interval so a daemon kill loses at most
                    // one interval of chunks.
                    if let Some(every) = conn.checkpoint_every {
                        if delta.chunks % every == 0 {
                            write_checkpoint_file(conn, state);
                        }
                    }
                    write_reply(
                        stream,
                        &Message::VerdictDelta {
                            chunks: delta.chunks,
                            events: delta.events,
                            races: delta.races,
                        },
                    )
                }
                Err(e @ SessionError::Trace(_)) => {
                    send_error(stream, state, ErrorCode::Trace, &e.to_string());
                    Flow::Close
                }
                Err(e) => {
                    send_error(stream, state, ErrorCode::Analysis, &e.to_string());
                    Flow::Close
                }
            }
        }
        Message::Finish => {
            let Some(session) = conn.session.take() else {
                send_error(stream, state, ErrorCode::Protocol, "finish before open");
                return Flow::Close;
            };
            match session.finish() {
                Ok(outcome) => {
                    state.finished.fetch_add(1, Ordering::SeqCst);
                    if let Some(path) = conn.checkpoint.take() {
                        let _ = std::fs::remove_file(path);
                    }
                    let _ = write_reply(
                        stream,
                        &Message::Final {
                            races: outcome.races.total_detected,
                            verdict: render_verdict(&outcome.races),
                        },
                    );
                    Flow::Close
                }
                Err(e) => {
                    send_error(stream, state, ErrorCode::Analysis, &e.to_string());
                    Flow::Close
                }
            }
        }
        Message::Suspend => {
            if conn.session.is_none() {
                send_error(stream, state, ErrorCode::Protocol, "suspend before open");
                return Flow::Close;
            }
            let chunks = conn.session.as_ref().map_or(0, |s| s.chunks());
            if suspend_to_disk(conn, state) {
                let _ = write_reply(stream, &Message::Suspended { chunks });
            } else {
                // Nothing checkpointable yet; the client starts over.
                let _ = write_reply(stream, &Message::Suspended { chunks: 0 });
            }
            Flow::Close
        }
        Message::Shutdown => {
            // No reply: the client treats EOF after Shutdown as success.
            state.drain.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(local);
            suspend_to_disk(conn, state);
            Flow::Close
        }
        // Server-to-client kinds arriving here are protocol violations.
        Message::Hello { .. }
        | Message::VerdictDelta { .. }
        | Message::Final { .. }
        | Message::Suspended { .. }
        | Message::Error { .. }
        | Message::Busy { .. } => {
            send_error(stream, state, ErrorCode::Protocol, "unexpected reply kind");
            Flow::Close
        }
    }
}

/// Suspends the connection's session (if any) to its checkpoint file.
/// Returns true when a checkpoint file was written.
fn suspend_to_disk(conn: &mut Conn, state: &ServeState) -> bool {
    let Some(session) = conn.session.take() else {
        return false;
    };
    let Some(path) = conn.checkpoint.take() else {
        return false;
    };
    match session.suspend() {
        Ok(Some(cp)) => {
            if persist_checkpoint(&path, &cp.encode()).is_ok() {
                state.suspended.fetch_add(1, Ordering::SeqCst);
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Persists checkpoint bytes atomically: a write-then-rename through a
/// per-thread temp file, so a daemon killed mid-write (or a resume read
/// racing a concurrent suspend of the same session name) can only ever
/// observe a complete old or complete new checkpoint — never a torn one
/// that would poison `--resume`.
fn persist_checkpoint(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{:?}", std::thread::current().id()));
    let tmp = PathBuf::from(tmp);
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Cuts and persists a periodic checkpoint without consuming the session.
fn write_checkpoint_file(conn: &mut Conn, state: &ServeState) {
    let (Some(session), Some(path)) = (conn.session.as_ref(), conn.checkpoint.as_ref()) else {
        return;
    };
    if let Ok(Some(cp)) = session.checkpoint() {
        let _ = persist_checkpoint(path, &cp.encode());
        let _ = state; // counted only for terminal suspensions
    }
}

fn write_reply<W: Write>(stream: &mut W, msg: &Message) -> Flow {
    let frame = encode_frame(msg);
    // A bounded retry absorbs transient WouldBlock bursts (injected or
    // genuine); a stalled client exhausts the budget because the write
    // deadline keeps expiring, and the session is suspended by the
    // caller's Close path.
    let mut backoff = Backoff::new(0x5E12_17, WRITE_RETRIES, Duration::from_millis(1));
    match write_all_with_retry(stream, &frame, &mut backoff).and_then(|_| stream.flush()) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::Close,
    }
}

fn send_error<W: Write>(stream: &mut W, state: &ServeState, code: ErrorCode, message: &str) {
    state.errors.fetch_add(1, Ordering::SeqCst);
    let _ = write_reply(
        stream,
        &Message::Error {
            code,
            message: message.to_string(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_paths_stay_inside_the_directory() {
        let dir = Path::new("/ckpt");
        for name in ["../../etc/passwd", ".hidden", "a/b/c", "", "名前"] {
            let p = checkpoint_path(dir, name);
            assert_eq!(p.parent(), Some(dir), "{name:?} escaped: {p:?}");
            let file = p.file_name().unwrap().to_str().unwrap();
            assert!(file.ends_with(".fckp"), "{file}");
            assert!(!file.starts_with('.'), "{file}");
        }
    }

    /// Regression: distinct names whose sanitized stems coincide must
    /// map to distinct checkpoint files, or concurrent sessions clobber
    /// each other's checkpoints.
    #[test]
    fn distinct_names_never_share_a_checkpoint_file() {
        let dir = Path::new("/ckpt");
        let colliding = [
            ("a/b", "a_b"),
            ("a b", "a_b"),
            ("x:y", "x_y"),
            ("..weird", "__weird"),
            ("", "session"),
        ];
        for (left, right) in colliding {
            assert_ne!(
                checkpoint_path(dir, left),
                checkpoint_path(dir, right),
                "{left:?} vs {right:?}"
            );
        }
        // Same name still maps to the same file (resume depends on it).
        assert_eq!(checkpoint_path(dir, "a/b"), checkpoint_path(dir, "a/b"));
    }

    #[test]
    fn checkpoint_path_carries_the_raw_name_crc() {
        let p = checkpoint_path(Path::new("."), "trace");
        let crc = futrace_util::crc32::crc32(b"trace");
        assert_eq!(
            p.file_name().unwrap().to_str().unwrap(),
            format!("trace-{crc:08x}.fckp")
        );
    }
}
