//! `tracetool serve`: a std-only TCP daemon multiplexing analysis
//! sessions over a fixed worker pool.
//!
//! One accepted connection carries one session, spoken in the framed
//! wire protocol of `futrace_util::wire::proto`, strictly lock-step:
//! the client sends one request frame and waits for its reply before
//! sending the next, so a slow analysis naturally backpressures the
//! sender without any windowing. Connections queue into a bounded
//! channel between the accept loop and the workers; when all workers
//! are busy and the queue is full, `accept` itself stops — backpressure
//! reaches all the way to the kernel listen queue.
//!
//! Failure is never silent: damaged frames and protocol violations are
//! answered with structured `Error` frames, a client that vanishes
//! mid-session has its partial work suspended to an FCKP checkpoint
//! file, and a `Shutdown` frame drains the daemon — every in-flight
//! session is suspended the same way, so `serve --resume` can pick all
//! of them back up.

use crate::render_verdict;
use crate::session::{Session, SessionConfig, SessionError};
use futrace_offline::{channel, Checkpoint};
use futrace_util::wire::proto::{
    decode_frame, encode_frame, ErrorCode, Message, ProtoError,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often an idle connection read wakes up to check the drain flag.
const DRAIN_POLL: Duration = Duration::from_millis(200);

/// Configuration for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to listen on (e.g. `127.0.0.1:7333`; port 0 picks one).
    pub addr: String,
    /// Worker threads — the number of sessions analyzed concurrently.
    pub workers: usize,
    /// Accepted-but-unclaimed connections held between the accept loop
    /// and the workers; beyond this, accepting stops (backpressure).
    pub queue_depth: usize,
    /// Directory for per-session FCKP checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// Reopen matching FCKP files when sessions reconnect.
    pub resume: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            checkpoint_dir: PathBuf::from("."),
            resume: false,
        }
    }
}

/// What the daemon did over its lifetime, reported after drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions that reached `Finish` and got a `Final` verdict.
    pub finished: u64,
    /// Sessions suspended to a checkpoint (explicitly, by client
    /// disappearance, or by drain).
    pub suspended: u64,
    /// Structured error frames sent.
    pub errors: u64,
}

struct ServeState {
    drain: AtomicBool,
    finished: AtomicU64,
    suspended: AtomicU64,
    errors: AtomicU64,
    next_session: AtomicU64,
    opts: ServeOptions,
}

/// A bound daemon, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listen socket (so callers can learn the picked port
    /// before the daemon starts serving).
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        std::fs::create_dir_all(&opts.checkpoint_dir)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                drain: AtomicBool::new(false),
                finished: AtomicU64::new(0),
                suspended: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                next_session: AtomicU64::new(1),
                opts,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends `Shutdown`, then drains: the accept
    /// loop stops, queued and in-flight sessions are suspended to their
    /// checkpoint files, workers exit, and the lifetime summary is
    /// returned.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let local = self.local_addr()?;
        let workers = self.state.opts.workers.max(1);
        let (tx, rx) = channel::bounded::<TcpStream>(self.state.opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            pool.push(std::thread::spawn(move || loop {
                // Hold the lock only for the dequeue: the receiver is
                // single-consumer, the pool shares it via the mutex.
                let conn = { rx.lock().unwrap().recv() };
                match conn {
                    Some(stream) => handle_connection(stream, &state, local),
                    None => break,
                }
            }));
        }

        for stream in self.listener.incoming() {
            if self.state.drain.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if self.state.drain.load(Ordering::SeqCst) {
                // The wake-up connection itself lands here; drop it.
                break;
            }
            // A full queue blocks right here — backpressure.
            if tx.send(stream).is_err() {
                break;
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }

        Ok(ServeSummary {
            finished: self.state.finished.load(Ordering::SeqCst),
            suspended: self.state.suspended.load(Ordering::SeqCst),
            errors: self.state.errors.load(Ordering::SeqCst),
        })
    }
}

/// Maps a client-supplied trace name to its checkpoint file, defanging
/// path separators and dotfiles so a hostile name cannot escape the
/// checkpoint directory.
pub fn checkpoint_path(dir: &Path, trace_name: &str) -> PathBuf {
    let mut safe: String = trace_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    while safe.starts_with('.') {
        safe.remove(0);
    }
    if safe.is_empty() {
        safe.push_str("session");
    }
    dir.join(format!("{safe}.fckp"))
}

/// Per-connection protocol driver state.
struct Conn {
    session: Option<Session>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<u64>,
}

fn handle_connection(mut stream: TcpStream, state: &ServeState, local: SocketAddr) {
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let _ = stream.set_nodelay(true);
    let mut conn = Conn {
        session: None,
        checkpoint: None,
        checkpoint_every: None,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];

    loop {
        // Drain every complete frame already buffered.
        loop {
            match decode_frame(&buf) {
                Ok((msg, consumed)) => {
                    buf.drain(..consumed);
                    match dispatch(msg, &mut conn, &mut stream, state, local) {
                        Flow::Continue => {}
                        Flow::Close => return,
                    }
                }
                Err(ProtoError::Truncated(_)) => break, // need more bytes
                Err(e) => {
                    // Structural damage (bad CRC, oversized, malformed):
                    // the stream cannot be resynced. Report, preserve the
                    // session, close.
                    send_error(&mut stream, state, ErrorCode::Protocol, &e.to_string());
                    suspend_to_disk(&mut conn, state);
                    return;
                }
            }
        }

        match stream.read(&mut scratch) {
            Ok(0) => {
                // Client went away mid-session: preserve its work.
                suspend_to_disk(&mut conn, state);
                return;
            }
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.drain.load(Ordering::SeqCst) {
                    // Drain: suspend in-flight work, tell the client.
                    let chunks = conn.session.as_ref().map_or(0, |s| s.chunks());
                    if suspend_to_disk(&mut conn, state) {
                        let _ = write_reply(&mut stream, &Message::Suspended { chunks });
                    }
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                suspend_to_disk(&mut conn, state);
                return;
            }
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn dispatch(
    msg: Message,
    conn: &mut Conn,
    stream: &mut TcpStream,
    state: &ServeState,
    local: SocketAddr,
) -> Flow {
    match msg {
        Message::Open {
            shards,
            checkpoint_every,
            lenient,
            trace_name,
        } => {
            if conn.session.is_some() {
                send_error(stream, state, ErrorCode::Protocol, "session already open");
                return Flow::Close;
            }
            if state.drain.load(Ordering::SeqCst) {
                send_error(stream, state, ErrorCode::Draining, "daemon is draining");
                return Flow::Close;
            }
            let cfg = SessionConfig {
                shards: (shards > 0).then_some(shards as usize),
                checkpoint_every: (checkpoint_every > 0).then_some(checkpoint_every),
                lenient,
                ..SessionConfig::default()
            };
            conn.checkpoint_every = (checkpoint_every > 0).then_some(checkpoint_every);
            let path = checkpoint_path(&state.opts.checkpoint_dir, &trace_name);
            let session = if state.opts.resume && path.exists() {
                match std::fs::read(&path).map_err(|e| e.to_string()).and_then(|d| {
                    Checkpoint::decode(&d).map_err(|e| e.to_string())
                }) {
                    Ok(cp) => Session::open_resumed(cfg, cp),
                    Err(e) => {
                        send_error(
                            stream,
                            state,
                            ErrorCode::Internal,
                            &format!("cannot reopen checkpoint: {e}"),
                        );
                        return Flow::Close;
                    }
                }
            } else {
                Session::open(cfg)
            };
            match session {
                Ok(session) => {
                    let id = state.next_session.fetch_add(1, Ordering::SeqCst);
                    let resumed = session.resumed_chunks();
                    conn.session = Some(session);
                    conn.checkpoint = Some(path);
                    write_reply(
                        stream,
                        &Message::Hello {
                            session: id,
                            resumed_chunks: resumed,
                        },
                    )
                }
                Err(e) => {
                    send_error(stream, state, ErrorCode::Analysis, &e.to_string());
                    Flow::Close
                }
            }
        }
        Message::Chunk { seq, payload } => {
            let Some(session) = conn.session.as_mut() else {
                send_error(stream, state, ErrorCode::Protocol, "chunk before open");
                return Flow::Close;
            };
            if seq != session.chunks() {
                let msg = format!(
                    "out-of-order chunk: got seq {seq}, expected {}",
                    session.chunks()
                );
                send_error(stream, state, ErrorCode::Protocol, &msg);
                suspend_to_disk(conn, state);
                return Flow::Close;
            }
            match session.feed_chunk(&payload) {
                Ok(delta) => {
                    // Periodic durability: cut a checkpoint at the
                    // configured interval so a daemon kill loses at most
                    // one interval of chunks.
                    if let Some(every) = conn.checkpoint_every {
                        if delta.chunks % every == 0 {
                            write_checkpoint_file(conn, state);
                        }
                    }
                    write_reply(
                        stream,
                        &Message::VerdictDelta {
                            chunks: delta.chunks,
                            events: delta.events,
                            races: delta.races,
                        },
                    )
                }
                Err(e @ SessionError::Trace(_)) => {
                    send_error(stream, state, ErrorCode::Trace, &e.to_string());
                    Flow::Close
                }
                Err(e) => {
                    send_error(stream, state, ErrorCode::Analysis, &e.to_string());
                    Flow::Close
                }
            }
        }
        Message::Finish => {
            let Some(session) = conn.session.take() else {
                send_error(stream, state, ErrorCode::Protocol, "finish before open");
                return Flow::Close;
            };
            match session.finish() {
                Ok(outcome) => {
                    state.finished.fetch_add(1, Ordering::SeqCst);
                    if let Some(path) = conn.checkpoint.take() {
                        let _ = std::fs::remove_file(path);
                    }
                    let _ = write_reply(
                        stream,
                        &Message::Final {
                            races: outcome.races.total_detected,
                            verdict: render_verdict(&outcome.races),
                        },
                    );
                    Flow::Close
                }
                Err(e) => {
                    send_error(stream, state, ErrorCode::Analysis, &e.to_string());
                    Flow::Close
                }
            }
        }
        Message::Suspend => {
            if conn.session.is_none() {
                send_error(stream, state, ErrorCode::Protocol, "suspend before open");
                return Flow::Close;
            }
            let chunks = conn.session.as_ref().map_or(0, |s| s.chunks());
            if suspend_to_disk(conn, state) {
                let _ = write_reply(stream, &Message::Suspended { chunks });
            } else {
                // Nothing checkpointable yet; the client starts over.
                let _ = write_reply(stream, &Message::Suspended { chunks: 0 });
            }
            Flow::Close
        }
        Message::Shutdown => {
            // No reply: the client treats EOF after Shutdown as success.
            state.drain.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(local);
            suspend_to_disk(conn, state);
            Flow::Close
        }
        // Server-to-client kinds arriving here are protocol violations.
        Message::Hello { .. }
        | Message::VerdictDelta { .. }
        | Message::Final { .. }
        | Message::Suspended { .. }
        | Message::Error { .. } => {
            send_error(stream, state, ErrorCode::Protocol, "unexpected reply kind");
            Flow::Close
        }
    }
}

/// Suspends the connection's session (if any) to its checkpoint file.
/// Returns true when a checkpoint file was written.
fn suspend_to_disk(conn: &mut Conn, state: &ServeState) -> bool {
    let Some(session) = conn.session.take() else {
        return false;
    };
    let Some(path) = conn.checkpoint.take() else {
        return false;
    };
    match session.suspend() {
        Ok(Some(cp)) => {
            if std::fs::write(&path, cp.encode()).is_ok() {
                state.suspended.fetch_add(1, Ordering::SeqCst);
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Cuts and persists a periodic checkpoint without consuming the session.
fn write_checkpoint_file(conn: &mut Conn, state: &ServeState) {
    let (Some(session), Some(path)) = (conn.session.as_ref(), conn.checkpoint.as_ref()) else {
        return;
    };
    if let Ok(Some(cp)) = session.checkpoint() {
        let _ = std::fs::write(path, cp.encode());
        let _ = state; // counted only for terminal suspensions
    }
}

fn write_reply(stream: &mut TcpStream, msg: &Message) -> Flow {
    let frame = encode_frame(msg);
    match stream.write_all(&frame).and_then(|_| stream.flush()) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::Close,
    }
}

fn send_error(stream: &mut TcpStream, state: &ServeState, code: ErrorCode, message: &str) {
    state.errors.fetch_add(1, Ordering::SeqCst);
    let _ = write_reply(
        stream,
        &Message::Error {
            code,
            message: message.to_string(),
        },
    );
}
