//! One incremental analysis, lifted out of the one-shot CLI.
//!
//! A [`Session`] owns exactly one DTRG analysis run. It can be fed three
//! ways — a whole trace blob, a whole decoded event list, or chunk by
//! chunk as frames arrive over the wire — and finished through any of
//! the three backends (serial, sharded, supervised) the one-shot
//! pipeline already had. The `futrace::Analyze` builder and `tracetool
//! serve` both ride this type, so batch and streaming analysis share one
//! code path and one [`AnalysisOutcome`] shape.
//!
//! Chunk feeding drives the engine's batched dispatch path
//! incrementally: the session keeps a live serial engine, consumes each
//! chunk's events the moment they arrive, and reports a [`VerdictDelta`]
//! (chunks / events / races so far) after every chunk. For a serial
//! configuration the final verdict *is* that engine's verdict — the
//! stream was analyzed as it arrived, nothing is replayed at
//! [`Session::finish`]. Sharded and supervised configurations replay the
//! accumulated (re-framed) trace through the existing offline pipelines,
//! whose merged reports are identical to serial by the pipeline's own
//! equivalence tests.
//!
//! Suspend/resume piggybacks on the supervised pipeline's FCKP
//! checkpoints: [`Session::suspend`] replays the received prefix under
//! `stop_after_chunks` to cut a checkpoint at the last completed chunk
//! boundary, and a session opened with [`Session::open_resumed`] skips
//! the completed prefix at finish while the client re-streams the full
//! trace (skip-completed-work resume). Periodic [`Session::checkpoint`]
//! calls use the same mechanism, so a killed daemon loses at most the
//! chunks received since the last interval.

use futrace_detector::{
    DetectorConfig, DetectorStats, DtrgReport, MemoryFootprint, RaceDetector, RaceReport,
};
use futrace_offline::checkpoint::FINGERPRINT_HEAD;
use futrace_offline::framed;
use futrace_offline::{
    run_sharded_events, run_supervised, trace_chunks, trace_events, Checkpoint, ShardPlan,
    ShardStats, SupervisedOutcome, SuperviseError, SupervisionReport, SupervisorPlan,
    SyntheticChunks, TraceError, TraceFingerprint,
};
use futrace_runtime::engine::{run_analysis, source, Analysis, Engine, EngineCounters};
use futrace_runtime::online::OnlineStats;
use futrace_runtime::{trace, Event};
use futrace_util::crc32::crc32;
use futrace_util::faultinject::FaultPlan;
use futrace_util::stats::Timer;
use std::convert::Infallible;
use std::fmt;

/// What can go wrong inside a session, independent of any I/O the caller
/// layered on top.
#[derive(Debug)]
pub enum SessionError {
    /// The fed trace (blob or chunk) is invalid.
    Trace(TraceError),
    /// The supervised backend failed unrecoverably.
    Supervise(String),
    /// The session configuration or feeding sequence is invalid.
    Config(String),
    /// A checkpoint could not be cut, or a resumed checkpoint does not
    /// match the re-streamed trace.
    Checkpoint(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Trace(e) => write!(f, "invalid trace: {e}"),
            SessionError::Supervise(e) => write!(f, "supervised run failed: {e}"),
            SessionError::Config(e) => write!(f, "invalid analysis options: {e}"),
            SessionError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Everything one analysis run produces, whatever the source and backend.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// Deduplicated, capped race report (the verdict).
    pub races: RaceReport,
    /// Structural statistics and DTRG cost counters (Table 2's columns,
    /// plus the memo and fast-path cache counters).
    pub stats: DetectorStats,
    /// Theorem 1's space bound, measured at the end of the run.
    pub footprint: MemoryFootprint,
    /// Engine counters: events consumed, checks performed, wall time,
    /// cache hit/miss totals, and any supervision suffix.
    pub engine: EngineCounters,
    /// Sharded-pipeline accounting, when the sharded or supervised
    /// backend ran.
    pub sharding: Option<ShardStats>,
    /// What the supervisor did, when the supervised backend ran.
    pub supervision: Option<SupervisionReport>,
    /// Online-pipeline telemetry (buffer publishes, canonical-walk
    /// frontier waits, per-shard routing), when the source was an
    /// instrumented parallel execution (`Analyze::program_parallel`).
    pub online: Option<OnlineStats>,
}

impl AnalysisOutcome {
    /// True iff any race was detected.
    pub fn has_races(&self) -> bool {
        self.races.has_races()
    }

    pub(crate) fn from_dtrg(report: DtrgReport, mut engine: EngineCounters) -> Self {
        // Surface the analysis's hot-path cache counters next to the
        // driver's own counts: hits from both cache layers, misses from
        // the memo (the shadow fast path has no distinct miss event —
        // every slow-path check is one).
        engine.cache_hits = report.stats.dtrg.memo_hits + report.stats.dtrg.shadow_hits;
        engine.cache_misses = report.stats.dtrg.memo_misses;
        AnalysisOutcome {
            races: report.report,
            stats: report.stats,
            footprint: report.footprint,
            engine,
            sharding: None,
            supervision: None,
            online: None,
        }
    }
}

/// Incremental verdict after one fed chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerdictDelta {
    /// Chunks consumed so far.
    pub chunks: u64,
    /// Events consumed so far.
    pub events: u64,
    /// Races detected so far (uncapped).
    pub races: u64,
}

/// Configuration for one session — the same knobs the `Analyze` builder
/// exposes, in resolved form.
#[derive(Clone, Debug, Default)]
pub struct SessionConfig {
    /// Detector configuration (report caps, first-race mode, caching).
    pub detector: DetectorConfig,
    /// Sharded backend with this many detect workers; `None` = serial.
    pub shards: Option<usize>,
    /// Supervised backend, barrier-snapshotting every N chunks.
    pub checkpoint_every: Option<u64>,
    /// Supervised backend with the deterministic fault plan from a seed.
    pub fault_seed: Option<u64>,
    /// Skip damaged trace chunks (counting them) instead of failing.
    pub lenient: bool,
}

/// Synthetic chunk granularity used when supervising an in-memory event
/// list (which has no framed boundaries of its own).
pub(crate) const SYNTHETIC_CHUNK_EVENTS: u64 = 4096;

/// Checkpoint interval injected when a session must cut a checkpoint but
/// was not configured with one (mirrors the CLI's historical default).
const INJECT_CHECKPOINT_EVERY: u64 = 8;

enum Feed {
    /// Nothing fed yet (finishing analyzes an empty stream).
    Empty,
    /// A whole trace blob (flat v1 or framed v2), fed in one call.
    Trace(Vec<u8>),
    /// A whole decoded event list, fed in one call.
    Events(Vec<Event>),
    /// Chunk-at-a-time feeding: the re-framed accumulated trace plus the
    /// live incremental engine.
    Wire {
        blob: Vec<u8>,
        engine: Box<Engine<RaceDetector>>,
    },
}

/// One incremental analysis. See the module docs.
pub struct Session {
    cfg: SessionConfig,
    feed: Feed,
    chunks: u64,
    events: u64,
    resume: Option<Checkpoint>,
    timer: Timer,
}

impl Session {
    /// Opens a session, validating the configuration up front (the same
    /// checks — and the same messages — the `Analyze` builder reports
    /// before any work runs).
    pub fn open(cfg: SessionConfig) -> Result<Session, SessionError> {
        if cfg.shards == Some(0) {
            return Err(SessionError::Config(
                "shards(0): the sharded backend needs at least one detect worker".to_string(),
            ));
        }
        if cfg.checkpoint_every == Some(0) {
            return Err(SessionError::Config(
                "checkpoint_every(0): the checkpoint interval must be at least one chunk"
                    .to_string(),
            ));
        }
        Ok(Session {
            cfg,
            feed: Feed::Empty,
            chunks: 0,
            events: 0,
            resume: None,
            timer: Timer::start(),
        })
    }

    /// Opens a session resuming from a suspended session's checkpoint.
    ///
    /// The feeder streams the *full* trace again (wire clients re-send
    /// every chunk; the incremental delta engine re-consumes them so
    /// deltas stay truthful); at [`Session::finish`] the supervised
    /// backend skips the chunks the checkpoint already completed, so the
    /// final report is identical to an uninterrupted run.
    pub fn open_resumed(
        cfg: SessionConfig,
        checkpoint: Checkpoint,
    ) -> Result<Session, SessionError> {
        let mut session = Session::open(cfg)?;
        session.resume = Some(checkpoint);
        Ok(session)
    }

    /// Chunks a resumed checkpoint already completed (0 for a fresh
    /// session).
    pub fn resumed_chunks(&self) -> u64 {
        self.resume.as_ref().map_or(0, |c| c.chunks_completed)
    }

    /// Chunks fed so far (wire feeding only).
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Events fed so far (wire feeding only).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Feeds a whole trace blob (flat v1 or framed v2). The one-shot
    /// batch path: decoding, lenient skipping, and error semantics are
    /// identical to the historical `Analyze` behavior.
    pub fn feed_trace(&mut self, blob: Vec<u8>) -> Result<(), SessionError> {
        match self.feed {
            Feed::Empty => {
                self.feed = Feed::Trace(blob);
                Ok(())
            }
            _ => Err(SessionError::Config(
                "feed_trace: the session was already fed".to_string(),
            )),
        }
    }

    /// Feeds a whole decoded event list.
    pub fn feed_events(&mut self, events: Vec<Event>) -> Result<(), SessionError> {
        match self.feed {
            Feed::Empty => {
                self.feed = Feed::Events(events);
                Ok(())
            }
            _ => Err(SessionError::Config(
                "feed_events: the session was already fed".to_string(),
            )),
        }
    }

    /// Feeds one trace chunk (v1-encoded events — the payload bytes of a
    /// framed `.ftrc` chunk), consuming it through the engine's batched
    /// dispatch path immediately and returning the incremental verdict.
    ///
    /// The chunk is also appended (re-framed, CRC'd) to the session's
    /// accumulated trace so the sharded / supervised backends and the
    /// checkpoint machinery can replay the exact stream received.
    pub fn feed_chunk(&mut self, payload: &[u8]) -> Result<VerdictDelta, SessionError> {
        let events =
            trace::decode(payload).map_err(|e| SessionError::Trace(TraceError::Decode(e)))?;
        let (blob, engine) = match &mut self.feed {
            Feed::Empty => {
                let mut blob = Vec::with_capacity(framed::HEADER_LEN + payload.len());
                blob.extend_from_slice(&framed::MAGIC);
                blob.push(framed::VERSION);
                self.feed = Feed::Wire {
                    blob,
                    engine: Box::new(Engine::new(RaceDetector::with_config(
                        self.cfg.detector.clone(),
                    ))),
                };
                match &mut self.feed {
                    Feed::Wire { blob, engine } => (blob, engine),
                    _ => unreachable!(),
                }
            }
            Feed::Wire { blob, engine } => (blob, engine),
            _ => {
                return Err(SessionError::Config(
                    "feed_chunk: the session was already fed a whole trace".to_string(),
                ))
            }
        };
        // Re-frame the chunk exactly as the streaming recorder would.
        let mut header = [0u8; framed::CHUNK_HEADER_LEN];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&(events.len() as u32).to_le_bytes());
        header[8..].copy_from_slice(&crc32(payload).to_le_bytes());
        blob.extend_from_slice(&header);
        blob.extend_from_slice(payload);

        engine.consume_slice(&events);
        self.chunks += 1;
        self.events += events.len() as u64;
        Ok(VerdictDelta {
            chunks: self.chunks,
            events: self.events,
            races: engine.analysis().total_detected(),
        })
    }

    fn supervised(&self) -> bool {
        self.cfg.checkpoint_every.is_some()
            || self.cfg.fault_seed.is_some()
            || self.resume.is_some()
    }

    fn supervisor_plan(&self) -> SupervisorPlan {
        let mut plan = SupervisorPlan {
            shard: ShardPlan::with_shards(self.cfg.shards.unwrap_or(ShardPlan::default().shards)),
            ..SupervisorPlan::default()
        };
        plan.checkpoint_every_chunks = self.cfg.checkpoint_every;
        if let Some(seed) = self.cfg.fault_seed {
            plan = plan.with_faults(&FaultPlan::from_seed(seed));
        }
        plan
    }

    /// Verifies a resumed checkpoint against the re-streamed trace. The
    /// fingerprint was taken over the *prefix* received before
    /// suspension, so the head CRC must match the same head span of the
    /// new blob and the new blob must be at least as long — a plain
    /// `matches_trace` would reject the (longer) full trace.
    fn verify_resume_fingerprint(&self, blob: &[u8]) -> Result<(), SessionError> {
        let Some(fp) = self.resume.as_ref().and_then(|c| c.fingerprint.as_ref()) else {
            return Ok(());
        };
        let head = blob.len().min(FINGERPRINT_HEAD).min(fp.len as usize);
        if (blob.len() as u64) < fp.len || crc32(&blob[..head]) != fp.head_crc {
            return Err(SessionError::Checkpoint(
                "resumed session received a different trace than the checkpoint covers"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Cuts an FCKP checkpoint covering every *completed* chunk received
    /// so far (all but the most recent, which resume re-analyzes), by
    /// replaying the accumulated prefix under the supervised pipeline's
    /// `stop_after_chunks` hook. Returns `None` when fewer than two
    /// chunks have arrived — there is no completed boundary to cut at.
    ///
    /// This is a replay, so checkpointing every N chunks costs O(n²/N)
    /// over a session's life — acceptable at trace-analysis scale, and
    /// the price of reusing the battle-tested supervised snapshot path
    /// instead of growing a second checkpoint mechanism.
    pub fn checkpoint(&self) -> Result<Option<Checkpoint>, SessionError> {
        let Feed::Wire { blob, .. } = &self.feed else {
            return Ok(None);
        };
        if self.chunks < 2 {
            return Ok(None);
        }
        let mut plan = self.supervisor_plan();
        plan.shard = ShardPlan::with_shards(self.cfg.shards.unwrap_or(1).max(1));
        plan.checkpoint_every_chunks =
            Some(self.cfg.checkpoint_every.unwrap_or(INJECT_CHECKPOINT_EVERY));
        plan.stop_after_chunks = Some(self.chunks - 1);
        plan.fingerprint = Some(TraceFingerprint::of(blob));
        let lenient = self.cfg.lenient;
        let detector = self.cfg.detector.clone();
        let out = run_supervised(
            || trace_events(blob, lenient),
            || RaceDetector::with_config(detector.clone()),
            &plan,
            self.resume.as_ref(),
        )
        .map_err(erase_supervise_error)?;
        match out {
            SupervisedOutcome::Suspended { checkpoint, .. } => Ok(Some(checkpoint)),
            // Only reachable if chunk accounting and the framed blob
            // disagree, which feed_chunk's construction rules out.
            SupervisedOutcome::Completed { .. } => Err(SessionError::Checkpoint(
                "checkpoint replay completed instead of suspending".to_string(),
            )),
        }
    }

    /// Suspends the session: cuts a checkpoint (see
    /// [`Session::checkpoint`]) and consumes the session. Returns `None`
    /// when nothing worth checkpointing was received; the caller then
    /// simply starts over on resume.
    pub fn suspend(self) -> Result<Option<Checkpoint>, SessionError> {
        self.checkpoint()
    }

    /// Runs the configured backend over everything fed and produces the
    /// final outcome.
    pub fn finish(self) -> Result<AnalysisOutcome, SessionError> {
        let supervised = self.supervised();

        // The serial wire path needs no replay at all: the incremental
        // engine already consumed the stream chunk by chunk.
        if !supervised && self.cfg.shards.is_none() {
            if let Feed::Wire { engine, .. } = self.feed {
                let (analysis, mut counters) = engine.into_parts();
                let report = Analysis::finish(analysis);
                counters.wall_ms = self.timer.elapsed_ms();
                return Ok(AnalysisOutcome::from_dtrg(report, counters));
            }
        } else if let Feed::Trace(blob) | Feed::Wire { blob, .. } = &self.feed {
            self.verify_resume_fingerprint(blob)?;
        }

        let lenient = self.cfg.lenient;
        let config = self.cfg.detector.clone();
        let timer = self.timer;

        // Every other combination replays through the existing one-shot
        // pipelines.
        let (blob, events): (Option<Vec<u8>>, Option<Vec<Event>>) = match self.feed {
            Feed::Empty => (None, Some(Vec::new())),
            Feed::Trace(data) => (Some(data), None),
            Feed::Events(ev) => (None, Some(ev)),
            Feed::Wire { blob, .. } => (Some(blob), None),
        };

        if supervised {
            let plan = {
                let mut plan = SupervisorPlan {
                    shard: ShardPlan::with_shards(
                        self.cfg.shards.unwrap_or(ShardPlan::default().shards),
                    ),
                    ..SupervisorPlan::default()
                };
                plan.checkpoint_every_chunks = self.cfg.checkpoint_every;
                if let Some(seed) = self.cfg.fault_seed {
                    plan = plan.with_faults(&FaultPlan::from_seed(seed));
                }
                plan
            };
            let factory = || RaceDetector::with_config(config.clone());
            let resume = self.resume.as_ref();
            let out = match (&blob, &events) {
                (Some(data), _) => {
                    run_supervised(|| trace_events(data, lenient), factory, &plan, resume)
                        .map_err(erase_supervise_error)?
                }
                (None, Some(events)) => run_supervised(
                    || {
                        SyntheticChunks::new(
                            events
                                .iter()
                                .cloned()
                                .map(Ok as fn(_) -> Result<_, TraceError>),
                            SYNTHETIC_CHUNK_EVENTS,
                        )
                    },
                    factory,
                    &plan,
                    resume,
                )
                .map_err(erase_supervise_error)?,
                (None, None) => unreachable!("feed resolution always yields one"),
            };
            let SupervisedOutcome::Completed {
                report,
                stats,
                supervision,
            } = out
            else {
                unreachable!("no stop_after requested, the run must complete");
            };
            let engine = engine_from_shards(&stats, timer.elapsed_ms(), Some(&supervision));
            let mut outcome = AnalysisOutcome::from_dtrg(report, engine);
            outcome.sharding = Some(stats);
            outcome.supervision = Some(supervision);
            return Ok(outcome);
        }

        if let Some(n) = self.cfg.shards {
            let factory = || RaceDetector::with_config(config.clone());
            let plan = ShardPlan::with_shards(n);
            let run = match (&blob, &events) {
                (Some(data), _) => {
                    let mut it = trace_events(data, lenient);
                    let mut run = run_sharded_events(&mut it, &plan, factory)
                        .map_err(SessionError::Trace)?;
                    run.stats.skipped_chunks = it.skipped_chunks();
                    run
                }
                (None, Some(events)) => {
                    let it = events
                        .iter()
                        .cloned()
                        .map(Ok as fn(_) -> Result<_, Infallible>);
                    match run_sharded_events(it, &plan, factory) {
                        Ok(run) => run,
                        Err(never) => match never {},
                    }
                }
                (None, None) => unreachable!("feed resolution always yields one"),
            };
            let engine = engine_from_shards(&run.stats, timer.elapsed_ms(), None);
            let mut outcome = AnalysisOutcome::from_dtrg(run.report, engine);
            outcome.sharding = Some(run.stats);
            return Ok(outcome);
        }

        // Plain serial replay: chunk-batched decode for trace blobs, the
        // batched in-memory path for event slices.
        let detector = RaceDetector::with_config(config);
        let out = match (&blob, &events) {
            (Some(data), _) => run_analysis(source::chunks(trace_chunks(data, lenient)), detector)
                .map_err(SessionError::Trace)?,
            (None, Some(events)) => match run_analysis(source::recorded(events), detector) {
                Ok(out) => out,
                Err(never) => match never {},
            },
            (None, None) => unreachable!("feed resolution always yields one"),
        };
        Ok(AnalysisOutcome::from_dtrg(out.report, out.counters))
    }
}

pub(crate) fn erase_supervise_error(e: SuperviseError<TraceError>) -> SessionError {
    match e {
        SuperviseError::Stream(e) => SessionError::Trace(e),
        other => SessionError::Supervise(other.to_string()),
    }
}

/// Builds engine counters from sharded-pipeline accounting, the exact
/// assembly the one-shot path used to do by hand.
pub(crate) fn engine_from_shards(
    stats: &ShardStats,
    wall_ms: f64,
    supervision: Option<&SupervisionReport>,
) -> EngineCounters {
    let mut c = EngineCounters {
        events: stats.events,
        control_events: stats.control_events,
        reads: stats.reads,
        writes: stats.writes,
        wall_ms,
        ..EngineCounters::default()
    };
    if let Some(s) = supervision {
        c.shard_restarts = s.shard_restarts;
        c.degradations = s.degradations;
        c.resumed_from_checkpoint = s.resumed_from_checkpoint;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{run_serial, EventLog, TaskCtx};

    fn racy_events() -> Vec<Event> {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(8, 0u64, "a");
            ctx.finish(|ctx| {
                for i in 0..8usize {
                    let aw = a.clone();
                    ctx.async_task(move |ctx| aw.write(ctx, i, 1));
                }
            });
            for i in 0..8usize {
                a.write(ctx, i, 2);
            }
            let aw = a.clone();
            let _f = ctx.future(move |ctx| aw.write(ctx, 3, 9));
            let _ = a.read(ctx, 3); // racy: read without get()
        });
        log.events
    }

    fn clean_events() -> Vec<Event> {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(4, 0u64, "a");
            for i in 0..4usize {
                a.write(ctx, i, 1);
            }
        });
        log.events
    }

    fn framed_blob(events: &[Event]) -> Vec<u8> {
        let payload = trace::encode(events);
        let mut blob = Vec::new();
        blob.extend_from_slice(&framed::MAGIC);
        blob.push(framed::VERSION);
        let mut header = [0u8; framed::CHUNK_HEADER_LEN];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&(events.len() as u32).to_le_bytes());
        header[8..].copy_from_slice(&crc32(&payload).to_le_bytes());
        blob.extend_from_slice(&header);
        blob.extend_from_slice(&payload);
        blob
    }

    #[test]
    fn rejects_zero_shards_and_zero_interval() {
        let err = Session::open(SessionConfig {
            shards: Some(0),
            ..SessionConfig::default()
        })
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, SessionError::Config(_)));
        let err = Session::open(SessionConfig {
            checkpoint_every: Some(0),
            ..SessionConfig::default()
        })
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, SessionError::Config(_)));
    }

    #[test]
    fn empty_session_finishes_clean() {
        let session = Session::open(SessionConfig::default()).unwrap();
        let out = session.finish().unwrap();
        assert!(!out.has_races());
        assert_eq!(out.engine.events, 0);
    }

    #[test]
    fn chunked_feed_matches_batch_feed() {
        let events = racy_events();
        let payload = trace::encode(&events);

        let mut batch = Session::open(SessionConfig::default()).unwrap();
        batch.feed_events(events.clone()).unwrap();
        let batch_out = batch.finish().unwrap();

        let mut wire = Session::open(SessionConfig::default()).unwrap();
        // Split at an event boundary: re-encode halves as two chunks.
        let mid = events.len() / 2;
        let first = trace::encode(&events[..mid]);
        let second = trace::encode(&events[mid..]);
        let d1 = wire.feed_chunk(&first).unwrap();
        let d2 = wire.feed_chunk(&second).unwrap();
        assert_eq!(d1.chunks, 1);
        assert_eq!(d2.chunks, 2);
        assert_eq!(d2.events, events.len() as u64);
        let wire_out = wire.finish().unwrap();

        assert_eq!(
            format!("{}", batch_out.races),
            format!("{}", wire_out.races)
        );
        assert_eq!(
            batch_out.races.total_detected,
            wire_out.races.total_detected
        );
        assert_eq!(batch_out.engine.events, wire_out.engine.events);
        // Sanity: the single-chunk wire path agrees too.
        let mut single = Session::open(SessionConfig::default()).unwrap();
        single.feed_chunk(&payload).unwrap();
        let single_out = single.finish().unwrap();
        assert_eq!(
            single_out.races.total_detected,
            batch_out.races.total_detected
        );
    }

    #[test]
    fn sharded_wire_feed_matches_serial() {
        let events = racy_events();
        let payload = trace::encode(&events);

        let mut serial = Session::open(SessionConfig::default()).unwrap();
        serial.feed_chunk(&payload).unwrap();
        let serial_out = serial.finish().unwrap();

        let mut sharded = Session::open(SessionConfig {
            shards: Some(4),
            ..SessionConfig::default()
        })
        .unwrap();
        sharded.feed_chunk(&payload).unwrap();
        let sharded_out = sharded.finish().unwrap();

        assert_eq!(
            format!("{}", serial_out.races),
            format!("{}", sharded_out.races)
        );
        assert!(sharded_out.sharding.is_some());
    }

    #[test]
    fn suspend_resume_reproduces_uninterrupted_report() {
        let events = racy_events();
        // Four chunks so the suspension point is interior.
        let quarter = events.len() / 4;
        let chunks: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                let lo = i * quarter;
                let hi = if i == 3 { events.len() } else { (i + 1) * quarter };
                trace::encode(&events[lo..hi])
            })
            .collect();

        let mut uninterrupted = Session::open(SessionConfig::default()).unwrap();
        for c in &chunks {
            uninterrupted.feed_chunk(c).unwrap();
        }
        let want = uninterrupted.finish().unwrap();

        let mut first = Session::open(SessionConfig::default()).unwrap();
        for c in &chunks[..3] {
            first.feed_chunk(c).unwrap();
        }
        let checkpoint = first
            .suspend()
            .unwrap()
            .expect("three chunks are checkpointable");
        assert!(checkpoint.chunks_completed >= 1);

        let mut resumed = Session::open_resumed(SessionConfig::default(), checkpoint).unwrap();
        assert!(resumed.resumed_chunks() >= 1);
        for c in &chunks {
            resumed.feed_chunk(c).unwrap();
        }
        let got = resumed.finish().unwrap();

        assert_eq!(format!("{}", want.races), format!("{}", got.races));
        assert_eq!(want.races.total_detected, got.races.total_detected);
        assert!(got.supervision.is_some());
    }

    #[test]
    fn resume_with_wrong_trace_is_rejected() {
        let racy = racy_events();
        let clean = clean_events();
        let racy_chunks: Vec<Vec<u8>> = racy.chunks(2).map(trace::encode).collect();

        let mut first = Session::open(SessionConfig::default()).unwrap();
        for c in &racy_chunks {
            first.feed_chunk(c).unwrap();
        }
        let checkpoint = first.suspend().unwrap().expect("checkpointable");

        let mut resumed = Session::open_resumed(SessionConfig::default(), checkpoint).unwrap();
        // Stream a *different* trace than the checkpoint covers.
        resumed.feed_chunk(&trace::encode(&clean)).unwrap();
        let err = resumed.finish().unwrap_err();
        assert!(matches!(err, SessionError::Checkpoint(_)), "got {err}");
    }

    #[test]
    fn whole_blob_feed_matches_event_feed() {
        let events = racy_events();
        let blob = framed_blob(&events);

        let mut by_blob = Session::open(SessionConfig::default()).unwrap();
        by_blob.feed_trace(blob).unwrap();
        let blob_out = by_blob.finish().unwrap();

        let mut by_events = Session::open(SessionConfig::default()).unwrap();
        by_events.feed_events(events).unwrap();
        let events_out = by_events.finish().unwrap();

        assert_eq!(
            format!("{}", blob_out.races),
            format!("{}", events_out.races)
        );
        assert_eq!(blob_out.engine.events, events_out.engine.events);
    }

    #[test]
    fn double_feed_is_rejected() {
        let mut s = Session::open(SessionConfig::default()).unwrap();
        s.feed_events(Vec::new()).unwrap();
        assert!(matches!(
            s.feed_trace(Vec::new()),
            Err(SessionError::Config(_))
        ));
        assert!(matches!(s.feed_chunk(&[]), Err(SessionError::Config(_))));
    }
}
