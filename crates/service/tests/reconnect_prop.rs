//! Propcheck: the reconnecting client reaches the fault-free verdict
//! under seeded network fault injection.
//!
//! One in-process daemon, one generated trace. For a range of seeds the
//! client streams the trace with `inject_net` wrapping its socket in
//! [`futrace_util::faultinject::NetFaults`] — short ops, transient
//! `Interrupted`/`WouldBlock` bursts, and mid-frame connection cuts —
//! and a bounded reconnect budget. Every seed must converge on the
//! byte-identical fault-free verdict; the final allowed attempt runs
//! clean, so convergence is guaranteed whenever the daemon itself is
//! healthy.

use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_offline::StreamWriter;
use futrace_runtime::{replay, run_serial, EventLog};
use futrace_service::{
    shutdown, stream_trace, ClientOptions, ClientOutcome, ServeOptions, Server,
};
use futrace_util::faultinject::NetFaults;
use futrace_util::rng::splitmix64;
use std::path::PathBuf;

/// Seeds exercised per run. Each seed draws independent read/write fault
/// schedules for every connection attempt, so a few dozen lanes cover
/// clean, short-op, transient-burst, and cut scenarios in both
/// directions.
const SEEDS: u64 = 24;

/// Reconnect budget per seed; generous enough that even a seed whose
/// first few lanes all cut still reaches the guaranteed-clean attempt.
const RETRIES: u32 = 4;

fn gen_trace_n(seed: u64, programs: usize) -> Vec<u8> {
    let mut state = seed;
    let progs: Vec<_> = (0..programs)
        .map(|_| randomprog::generate(splitmix64(&mut state), &GenParams::future_heavy()))
        .collect();
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        for prog in &progs {
            randomprog::execute(ctx, prog);
        }
    });
    // Small chunks: many wire frames per session, so byte-offset cuts
    // land mid-stream rather than before the handshake.
    let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 512).expect("writing to a Vec");
    replay(&log.events, &mut w);
    let (blob, _) = w.finish().expect("writing to a Vec");
    blob
}

/// Concatenates generated programs until the trace outspans the injected
/// cut range (200..20_000 bytes), so every write-cut lane actually tears
/// the connection mid-stream.
fn gen_trace(seed: u64) -> Vec<u8> {
    let mut programs = 64;
    loop {
        let blob = gen_trace_n(seed, programs);
        if blob.len() >= 24_000 || programs >= 4096 {
            return blob;
        }
        programs *= 2;
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "futrace-reconnect-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start_daemon(dir: &PathBuf) -> (String, std::thread::JoinHandle<futrace_service::ServeSummary>) {
    let server = Server::bind(ServeOptions {
        checkpoint_dir: dir.clone(),
        resume: true,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn opts(addr: &str, name: &str) -> ClientOptions {
    ClientOptions {
        addr: addr.to_string(),
        trace_name: name.to_string(),
        ..ClientOptions::default()
    }
}

#[test]
fn seeded_faults_converge_on_the_fault_free_verdict() {
    let dir = scratch_dir("prop");
    let (addr, handle) = start_daemon(&dir);
    let blob = gen_trace(0xF00D);

    let baseline = match stream_trace(&opts(&addr, "baseline"), &blob) {
        Ok(ClientOutcome::Finished { races, verdict, attempts, .. }) => {
            assert_eq!(attempts, 1, "fault-free run must not reconnect");
            (races, verdict)
        }
        other => panic!("fault-free baseline did not finish: {other:?}"),
    };

    let mut reconnected = 0u64;
    for seed in 0..SEEDS {
        let mut o = opts(&addr, &format!("prop-{seed}"));
        o.inject_net = Some(seed);
        o.retries = RETRIES;
        match stream_trace(&o, &blob) {
            Ok(ClientOutcome::Finished { races, verdict, attempts, .. }) => {
                assert_eq!(
                    (races, &verdict),
                    (baseline.0, &baseline.1),
                    "seed {seed} diverged from the fault-free verdict"
                );
                assert!(
                    attempts >= 1 && attempts <= RETRIES + 1,
                    "seed {seed}: attempts {attempts} outside budget"
                );
                if attempts > 1 {
                    reconnected += 1;
                }
            }
            other => panic!("seed {seed} did not finish: {other:?}"),
        }
    }
    // The seed range must actually exercise the reconnect path — a
    // regression that stops injecting cuts would otherwise pass silently.
    assert!(
        reconnected > 0,
        "no seed in 0..{SEEDS} forced a reconnect; injection is inert"
    );

    shutdown(&addr).expect("shutdown");
    let summary = handle.join().expect("daemon thread");
    assert_eq!(summary.busy_rejected, 0, "no quota in play");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retries_zero_surfaces_the_raw_error() {
    let dir = scratch_dir("raw");
    let (addr, handle) = start_daemon(&dir);
    let blob = gen_trace(0xBEEF);

    // Find a seed whose first lane cuts the write half early, so the
    // single allowed (and still faulted) attempt is guaranteed to tear.
    let seed = (0..1024)
        .find(|&s| {
            matches!(NetFaults::from_seed(s, 0).write.hard_error_at, Some(at) if at < 4096)
        })
        .expect("some seed cuts writes early");

    let mut o = opts(&addr, "raw");
    o.inject_net = Some(seed);
    o.retries = 0;
    let err = stream_trace(&o, &blob).expect_err("a cut with retries=0 must fail");
    // Historical single-shot behavior: the raw error, not RetriesExhausted.
    match err {
        futrace_service::ClientError::Io(_) | futrace_service::ClientError::Proto(_) => {}
        other => panic!("expected a raw torn-connection error, got {other}"),
    }

    // The same seed with a reconnect budget converges.
    let mut o = opts(&addr, "raw-retry");
    o.inject_net = Some(seed);
    o.retries = RETRIES;
    match stream_trace(&o, &blob) {
        Ok(ClientOutcome::Finished { attempts, .. }) => {
            assert!(attempts > 1, "the cut seed must have forced a reconnect")
        }
        other => panic!("retrying run did not finish: {other:?}"),
    }

    shutdown(&addr).expect("shutdown");
    handle.join().expect("daemon thread");
    std::fs::remove_dir_all(&dir).ok();
}
