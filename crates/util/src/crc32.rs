//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), std-only.
//!
//! The framed trace format checksums every chunk payload so bit rot,
//! short writes, and truncated transfers are detected per chunk rather
//! than corrupting the decode of everything after them, and the wire
//! protocol ([`crate::wire::proto`]) frames every message the same way so
//! a damaged client stream degrades into a structured error instead of a
//! misparse. CRC-32 is the right strength here: the threat model is
//! accidental corruption, not an adversary, and a table-driven CRC costs
//! ~1 cycle/byte — invisible next to varint decoding.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 state, for checksumming data that arrives in pieces
/// (a streaming writer's chunk buffer, a reader validating as it copies).
#[derive(Clone, Copy, Debug)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Fresh state.
    pub fn new() -> Self {
        Hasher { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values (same ones zlib documents).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut h = Hasher::new();
        for piece in data.chunks(7) {
            h.update(piece);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"framed trace chunk payload".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[i] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at byte {i} bit {bit}");
            }
        }
    }
}
