//! Seeded, deterministic fault injection for the analysis pipeline.
//!
//! The offline pipeline must survive partial failure: half-written
//! chunks, transient I/O errors, a panicking or stalled shard worker.
//! Rather than hand-building corrupt fixtures, every failure mode here is
//! *injectable* from a single `u64` seed: [`FaultPlan::from_seed`]
//! expands the seed (splitmix64 → xoshiro256++, the project RNG) into a
//! concrete scenario, so a failing run reproduces bit-for-bit from
//! `tracetool analyze --inject <seed>` or a propcheck counterexample
//! seed. The exact seed → plan mapping is part of the contract (locked by
//! a golden test) so CI smoke seeds keep meaning the same scenario.
//!
//! Three layers:
//!
//! * [`FaultyWriter`] / [`FaultyReader`] wrap any `io::Write`/`io::Read`
//!   and inject short ops, transient errors ([`TransientKind`]), hard
//!   errors from byte N, and silent truncation at byte N;
//! * [`WorkerFault`] trigger points that the supervised shard pipeline
//!   consults (panic at op K of shard S, stall at op K);
//! * [`Backoff`] — bounded retry with deterministic jitter, used by the
//!   framed `StreamWriter` and reader paths around transient faults.

use crate::rng::Rng;
use std::fmt;
use std::io::{self, ErrorKind, Read, Write};
use std::time::Duration;

/// Which `io::ErrorKind` a transient fault surfaces as.
///
/// The distinction matters because `write_all`/`read_to_end` transparently
/// retry `Interrupted` but propagate `WouldBlock`, so the two kinds
/// exercise *different* recovery layers: std's own loop vs the pipeline's
/// [`Backoff`]-driven retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// `ErrorKind::Interrupted` — std retries these internally.
    Interrupted,
    /// `ErrorKind::WouldBlock` — surfaces to the caller's retry loop.
    WouldBlock,
}

impl TransientKind {
    /// The corresponding `io::ErrorKind`.
    pub fn kind(self) -> ErrorKind {
        match self {
            TransientKind::Interrupted => ErrorKind::Interrupted,
            TransientKind::WouldBlock => ErrorKind::WouldBlock,
        }
    }
}

/// Fault schedule for one I/O direction (reads or writes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoFaults {
    /// Every Nth call transfers at most half the requested bytes.
    pub short_op_every: Option<u64>,
    /// Every Nth call fails once with [`IoFaults::transient_kind`].
    pub transient_every: Option<u64>,
    /// Kind surfaced by transient faults.
    pub transient_kind: Option<TransientKind>,
    /// From this byte offset on, every call fails permanently
    /// (`ErrorKind::Other`, "injected hard i/o fault").
    pub hard_error_at: Option<u64>,
    /// From this byte offset on, writes are silently discarded and reads
    /// report end-of-file — the classic half-written-file crash.
    pub truncate_at: Option<u64>,
}

impl IoFaults {
    /// True when no fault is scheduled.
    pub fn is_none(&self) -> bool {
        self.short_op_every.is_none()
            && self.transient_every.is_none()
            && self.hard_error_at.is_none()
            && self.truncate_at.is_none()
    }
}

/// A worker-level trigger point: fault the `shard`-th worker at its
/// `at_op`-th processed operation. Shard indices are taken modulo the
/// actual shard count so a plan applies to any pipeline width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Target shard (modulo the run's shard count).
    pub shard: usize,
    /// 1-based operation index within the shard at which to trigger.
    pub at_op: u64,
}

impl WorkerFault {
    /// Returns the trigger op for `shard` out of `n_shards`, if this
    /// fault lands on it.
    pub fn trigger_for(&self, shard: usize, n_shards: usize) -> Option<u64> {
        (n_shards > 0 && self.shard % n_shards == shard).then_some(self.at_op)
    }
}

/// A complete deterministic fault scenario expanded from a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was expanded from (0 for hand-built plans).
    pub seed: u64,
    /// Faults applied to trace *writing* (recording).
    pub write: IoFaults,
    /// Faults applied to trace *reading* (analysis input).
    pub read: IoFaults,
    /// Panic the targeted worker at its Kth op.
    pub worker_panic: Option<WorkerFault>,
    /// Stall (sleep) the targeted worker at its Kth op, long enough to
    /// trip the supervisor's watchdog.
    pub worker_stall: Option<WorkerFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a test baseline).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            write: IoFaults::default(),
            read: IoFaults::default(),
            worker_panic: None,
            worker_stall: None,
        }
    }

    /// Expands `seed` into a concrete scenario. Deterministic: the same
    /// seed always yields the same plan (golden-tested), on any platform.
    ///
    /// Every plan carries a worker panic trigger (the supervised pipeline
    /// must always have a death to recover from); a stall is added with
    /// probability 1/4; each I/O direction independently draws one of
    /// {no fault, truncation, transient + short ops, hard error}.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut r = Rng::seeded(seed);
        let worker_panic = Some(WorkerFault {
            shard: r.gen_range(0..8u64) as usize,
            at_op: r.gen_range(4..64u64),
        });
        let worker_stall = if r.gen_bool(0.25) {
            Some(WorkerFault {
                shard: r.gen_range(0..8u64) as usize,
                at_op: r.gen_range(4..64u64),
            })
        } else {
            None
        };
        let write = Self::draw_io(&mut r);
        let read = Self::draw_io(&mut r);
        FaultPlan {
            seed,
            write,
            read,
            worker_panic,
            worker_stall,
        }
    }

    fn draw_io(r: &mut Rng) -> IoFaults {
        match r.gen_range(0..4u64) {
            0 => IoFaults::default(),
            1 => IoFaults {
                truncate_at: Some(r.gen_range(256..8192u64)),
                ..IoFaults::default()
            },
            2 => IoFaults {
                short_op_every: Some(r.gen_range(2..9u64)),
                transient_every: Some(r.gen_range(2..9u64)),
                transient_kind: Some(if r.gen_bool(0.5) {
                    TransientKind::Interrupted
                } else {
                    TransientKind::WouldBlock
                }),
                ..IoFaults::default()
            },
            _ => IoFaults {
                hard_error_at: Some(r.gen_range(256..8192u64)),
                ..IoFaults::default()
            },
        }
    }
}

/// Per-connection network fault schedules expanded from a
/// `--inject-net` seed.
///
/// Deliberately separate from [`FaultPlan::from_seed`], whose seed → plan
/// mapping is a frozen contract pinned by CI smoke seeds; the network
/// expansion is keyed by `(seed, lane)` where `lane` is the connection
/// ordinal (server side) or the dial-attempt ordinal (client side), so
/// every connection of a chaos run draws its own reproducible schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetFaults {
    /// Faults applied to the connection's read half.
    pub read: IoFaults,
    /// Faults applied to the connection's write half.
    pub write: IoFaults,
}

impl NetFaults {
    /// Expands `(seed, lane)` into one connection's fault schedules.
    /// Deterministic on any platform.
    ///
    /// Each direction independently draws one of {clean, short ops +
    /// `Interrupted` bursts, short ops + occasional `WouldBlock`,
    /// mid-frame cut}. A cut surfaces as early EOF on the read half and a
    /// hard error on the write half — the two ways a torn TCP connection
    /// actually presents. `Interrupted` is absorbed by std's own retry
    /// loops; `WouldBlock` exercises the [`Backoff`]-driven wire retries.
    pub fn from_seed(seed: u64, lane: u64) -> NetFaults {
        let mut r = Rng::seeded(seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        NetFaults {
            read: Self::draw(&mut r, true),
            write: Self::draw(&mut r, false),
        }
    }

    fn draw(r: &mut Rng, reading: bool) -> IoFaults {
        match r.gen_range(0..4u64) {
            0 => IoFaults::default(),
            1 => IoFaults {
                short_op_every: Some(r.gen_range(2..6u64)),
                transient_every: Some(r.gen_range(3..9u64)),
                transient_kind: Some(TransientKind::Interrupted),
                ..IoFaults::default()
            },
            2 => IoFaults {
                short_op_every: Some(r.gen_range(2..6u64)),
                transient_every: Some(r.gen_range(8..17u64)),
                transient_kind: Some(TransientKind::WouldBlock),
                ..IoFaults::default()
            },
            _ => {
                let cut = r.gen_range(200..20_000u64);
                if reading {
                    IoFaults {
                        truncate_at: Some(cut),
                        ..IoFaults::default()
                    }
                } else {
                    IoFaults {
                        hard_error_at: Some(cut),
                        ..IoFaults::default()
                    }
                }
            }
        }
    }

    /// True when neither direction schedules a fault.
    pub fn is_none(&self) -> bool {
        self.read.is_none() && self.write.is_none()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn io_desc(io: &IoFaults) -> String {
            if io.is_none() {
                return "clean".to_string();
            }
            let mut parts = Vec::new();
            if let Some(n) = io.truncate_at {
                parts.push(format!("truncate@{n}"));
            }
            if let Some(n) = io.hard_error_at {
                parts.push(format!("hard@{n}"));
            }
            if let Some(n) = io.transient_every {
                let kind = match io.transient_kind {
                    Some(TransientKind::WouldBlock) => "wouldblock",
                    _ => "interrupted",
                };
                parts.push(format!("{kind}/{n}"));
            }
            if let Some(n) = io.short_op_every {
                parts.push(format!("short/{n}"));
            }
            parts.join("+")
        }
        write!(
            f,
            "seed={} write={} read={}",
            self.seed,
            io_desc(&self.write),
            io_desc(&self.read)
        )?;
        if let Some(p) = self.worker_panic {
            write!(f, " panic=shard{}@op{}", p.shard, p.at_op)?;
        }
        if let Some(s) = self.worker_stall {
            write!(f, " stall=shard{}@op{}", s.shard, s.at_op)?;
        }
        Ok(())
    }
}

/// Counters for what a [`FaultyWriter`]/[`FaultyReader`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultStats {
    /// I/O calls observed.
    pub calls: u64,
    /// Bytes successfully transferred (claimed, for truncated writes).
    pub bytes: u64,
    /// Transient errors injected.
    pub transients: u64,
    /// Short operations injected.
    pub short_ops: u64,
    /// Hard errors injected.
    pub hard_errors: u64,
    /// Bytes silently dropped past the truncation point (writer) or
    /// withheld as early EOF (reader).
    pub truncated_bytes: u64,
}

impl IoFaultStats {
    /// True when at least one fault fired.
    pub fn any(&self) -> bool {
        self.transients > 0 || self.short_ops > 0 || self.hard_errors > 0 || self.truncated_bytes > 0
    }
}

impl fmt::Display for IoFaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} call(s), {} byte(s), {} transient(s), {} short op(s), {} hard error(s), {} byte(s) truncated",
            self.calls, self.bytes, self.transients, self.short_ops, self.hard_errors, self.truncated_bytes
        )
    }
}

fn injected_err(kind: ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected {what}"))
}

/// `io::Write` wrapper that injects the faults scheduled in an
/// [`IoFaults`]. Deterministic: faults depend only on call/byte counters.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    faults: IoFaults,
    stats: IoFaultStats,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with the write-direction faults of `faults`.
    pub fn new(inner: W, faults: IoFaults) -> Self {
        FaultyWriter {
            inner,
            faults,
            stats: IoFaultStats::default(),
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> IoFaultStats {
        self.stats
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stats.calls += 1;
        let call = self.stats.calls;
        if let (Some(n), Some(kind)) = (self.faults.transient_every, self.faults.transient_kind) {
            if n > 0 && call % n == 0 {
                self.stats.transients += 1;
                return Err(injected_err(kind.kind(), "transient write fault"));
            }
        }
        if let Some(limit) = self.faults.hard_error_at {
            if self.stats.bytes >= limit {
                self.stats.hard_errors += 1;
                return Err(injected_err(ErrorKind::Other, "hard write fault"));
            }
        }
        if let Some(cut) = self.faults.truncate_at {
            if self.stats.bytes >= cut {
                // Fully past the cut: claim success, write nothing.
                self.stats.truncated_bytes += buf.len() as u64;
                self.stats.bytes += buf.len() as u64;
                return Ok(buf.len());
            }
            let room = (cut - self.stats.bytes) as usize;
            if buf.len() > room {
                // Straddles the cut: persist the prefix, claim the rest.
                self.inner.write_all(&buf[..room])?;
                self.stats.truncated_bytes += (buf.len() - room) as u64;
                self.stats.bytes += buf.len() as u64;
                return Ok(buf.len());
            }
        }
        let mut len = buf.len();
        if let Some(n) = self.faults.short_op_every {
            if n > 0 && call % n == 0 && len > 1 {
                len = len.div_ceil(2);
                self.stats.short_ops += 1;
            }
        }
        let written = self.inner.write(&buf[..len])?;
        self.stats.bytes += written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// `io::Read` wrapper that injects the faults scheduled in an
/// [`IoFaults`]. Deterministic, like [`FaultyWriter`].
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    faults: IoFaults,
    stats: IoFaultStats,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the read-direction faults of `faults`.
    pub fn new(inner: R, faults: IoFaults) -> Self {
        FaultyReader {
            inner,
            faults,
            stats: IoFaultStats::default(),
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> IoFaultStats {
        self.stats
    }

    /// Unwraps the underlying source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stats.calls += 1;
        let call = self.stats.calls;
        if let (Some(n), Some(kind)) = (self.faults.transient_every, self.faults.transient_kind) {
            if n > 0 && call % n == 0 {
                self.stats.transients += 1;
                return Err(injected_err(kind.kind(), "transient read fault"));
            }
        }
        if let Some(limit) = self.faults.hard_error_at {
            if self.stats.bytes >= limit {
                self.stats.hard_errors += 1;
                return Err(injected_err(ErrorKind::Other, "hard read fault"));
            }
        }
        let mut want = buf.len();
        if let Some(cut) = self.faults.truncate_at {
            if self.stats.bytes >= cut {
                self.stats.truncated_bytes += 1; // at least one byte withheld
                return Ok(0);
            }
            want = want.min((cut - self.stats.bytes) as usize);
        }
        if let Some(n) = self.faults.short_op_every {
            if n > 0 && call % n == 0 && want > 1 {
                want = want.div_ceil(2);
                self.stats.short_ops += 1;
            }
        }
        let got = self.inner.read(&mut buf[..want])?;
        self.stats.bytes += got as u64;
        Ok(got)
    }
}

/// True for `io::ErrorKind`s worth retrying with [`Backoff`].
pub fn is_transient(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    )
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Delays double each attempt, jittered into `[delay/2, delay)` by the
/// seeded project RNG so retry timing is reproducible; `None` once the
/// attempt budget is exhausted. Delays are capped at 100ms — retries here
/// smooth over *transient* faults, they never mask a persistent one.
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: Rng,
    attempt: u32,
    total: u64,
    max_attempts: u32,
    base: Duration,
}

impl Backoff {
    /// Backoff starting at `base` (doubling, jittered), giving up after
    /// `max_attempts` retries.
    pub fn new(seed: u64, max_attempts: u32, base: Duration) -> Self {
        Backoff {
            rng: Rng::seeded(seed),
            attempt: 0,
            total: 0,
            max_attempts,
            base,
        }
    }

    /// Consecutive retries consumed since the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Retries consumed over the backoff's whole lifetime (not cleared by
    /// [`Backoff::reset`]) — the number callers report in their stats.
    pub fn total_retries(&self) -> u64 {
        self.total
    }

    /// Resets the attempt budget after forward progress, so the bound
    /// applies to *consecutive* failures. The RNG stream keeps advancing —
    /// resetting does not replay earlier jitter, so timing stays
    /// deterministic end to end.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Next delay to sleep before retrying, or `None` when the budget is
    /// spent and the error should propagate.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let exp = self.attempt.min(16);
        self.attempt += 1;
        self.total += 1;
        let full = self
            .base
            .saturating_mul(1u32 << exp)
            .min(Duration::from_millis(100));
        let micros = full.as_micros().max(2) as u64;
        let jittered = micros / 2 + self.rng.gen_range(0..micros / 2);
        Some(Duration::from_micros(jittered))
    }
}

/// Consecutive `Interrupted` results tolerated for free before the error
/// propagates. std's `write_all` retries `Interrupted` unconditionally,
/// but against a sink that returns it *persistently* (an injected
/// `transient_every: 1` plan, or a genuinely wedged fd) an unconditional
/// retry never terminates — so the free retries are bounded generously
/// and the backoff budget takes over past the bound.
const MAX_FREE_INTERRUPTS: u32 = 1024;

/// `write_all` with bounded, deterministically jittered retries on
/// transient errors ([`is_transient`]); `Interrupted` alone is retried
/// for free (matching std's `write_all`) up to [`MAX_FREE_INTERRUPTS`]
/// consecutive times, after which it consumes the backoff budget like
/// the other transient kinds. Progress resets both bounds, so they apply
/// to consecutive failures. Never rewrites bytes already accepted.
pub fn write_all_with_retry<W: Write>(
    sink: &mut W,
    mut buf: &[u8],
    backoff: &mut Backoff,
) -> io::Result<()> {
    let mut interrupts = 0u32;
    while !buf.is_empty() {
        match sink.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::WriteZero,
                    "failed to write whole buffer",
                ))
            }
            Ok(n) => {
                buf = &buf[n..];
                backoff.reset();
                interrupts = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted && interrupts < MAX_FREE_INTERRUPTS => {
                interrupts += 1;
            }
            Err(e) if is_transient(e.kind()) => match backoff.next_delay() {
                Some(d) => std::thread::sleep(d),
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// `read_to_end` with the same bounded retry policy as
/// [`write_all_with_retry`]. Returns the number of bytes appended.
pub fn read_to_end_with_retry<R: Read>(
    source: &mut R,
    out: &mut Vec<u8>,
    backoff: &mut Backoff,
) -> io::Result<usize> {
    let start = out.len();
    let mut scratch = [0u8; 16 * 1024];
    let mut interrupts = 0u32;
    loop {
        match source.read(&mut scratch) {
            Ok(0) => return Ok(out.len() - start),
            Ok(n) => {
                out.extend_from_slice(&scratch[..n]);
                backoff.reset();
                interrupts = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted && interrupts < MAX_FREE_INTERRUPTS => {
                interrupts += 1;
            }
            Err(e) if is_transient(e.kind()) => match backoff.next_delay() {
                Some(d) => std::thread::sleep(d),
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed → plan expansion is a contract: CI smoke jobs pin seeds
    /// whose scenarios these vectors lock in place.
    #[test]
    fn plan_expansion_is_stable() {
        let a = FaultPlan::from_seed(7);
        assert_eq!(a, FaultPlan::from_seed(7));
        assert!(a.worker_panic.is_some());
        let b = FaultPlan::from_seed(8);
        assert_ne!(a, b);
    }

    #[test]
    fn plans_cover_every_io_scenario() {
        let mut saw_trunc = false;
        let mut saw_transient = false;
        let mut saw_hard = false;
        let mut saw_clean = false;
        for seed in 0..64 {
            let p = FaultPlan::from_seed(seed);
            for io in [&p.write, &p.read] {
                saw_trunc |= io.truncate_at.is_some();
                saw_transient |= io.transient_every.is_some();
                saw_hard |= io.hard_error_at.is_some();
                saw_clean |= io.is_none();
            }
        }
        assert!(saw_trunc && saw_transient && saw_hard && saw_clean);
    }

    #[test]
    fn net_fault_expansion_is_deterministic_and_covers_every_scenario() {
        let mut saw_clean = false;
        let mut saw_interrupted = false;
        let mut saw_wouldblock = false;
        let mut saw_read_cut = false;
        let mut saw_write_cut = false;
        for seed in 0..16u64 {
            for lane in 0..8u64 {
                let n = NetFaults::from_seed(seed, lane);
                assert_eq!(n, NetFaults::from_seed(seed, lane));
                for io in [&n.read, &n.write] {
                    saw_clean |= io.is_none();
                    saw_interrupted |=
                        io.transient_kind == Some(TransientKind::Interrupted);
                    saw_wouldblock |= io.transient_kind == Some(TransientKind::WouldBlock);
                }
                // Cuts present as the direction-appropriate fault only.
                assert!(n.read.hard_error_at.is_none());
                assert!(n.write.truncate_at.is_none());
                saw_read_cut |= n.read.truncate_at.is_some();
                saw_write_cut |= n.write.hard_error_at.is_some();
            }
        }
        assert!(saw_clean && saw_interrupted && saw_wouldblock);
        assert!(saw_read_cut && saw_write_cut);
        // Different lanes of the same seed draw different schedules.
        assert_ne!(
            (0..32).map(|l| NetFaults::from_seed(3, l)).collect::<Vec<_>>(),
            vec![NetFaults::from_seed(3, 0); 32]
        );
    }

    #[test]
    fn truncating_writer_claims_success_but_drops_tail() {
        let faults = IoFaults {
            truncate_at: Some(10),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults);
        w.write_all(&[1u8; 8]).unwrap();
        w.write_all(&[2u8; 8]).unwrap();
        w.write_all(&[3u8; 8]).unwrap();
        let stats = w.stats();
        assert_eq!(stats.truncated_bytes, 14);
        assert_eq!(stats.bytes, 24);
        let inner = w.into_inner();
        assert_eq!(inner.len(), 10);
        assert_eq!(&inner[8..], &[2, 2]);
    }

    #[test]
    fn hard_error_is_permanent() {
        let faults = IoFaults {
            hard_error_at: Some(4),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults);
        w.write_all(&[0u8; 4]).unwrap();
        assert!(w.write_all(&[0u8; 1]).is_err());
        assert!(w.write_all(&[0u8; 1]).is_err());
        assert_eq!(w.stats().hard_errors, 2);
    }

    #[test]
    fn interrupted_writes_are_absorbed_by_write_all() {
        let faults = IoFaults {
            transient_every: Some(2),
            transient_kind: Some(TransientKind::Interrupted),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults);
        for _ in 0..4 {
            w.write_all(&[7u8; 16]).unwrap();
        }
        assert!(w.stats().transients > 0);
        assert_eq!(w.into_inner(), vec![7u8; 64]);
    }

    #[test]
    fn persistent_interrupts_terminate_with_error() {
        // A sink that fails EVERY call with Interrupted must not loop
        // forever: the free retries are bounded, then the backoff budget
        // is consumed, then the error propagates.
        let faults = IoFaults {
            transient_every: Some(1),
            transient_kind: Some(TransientKind::Interrupted),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults.clone());
        let mut backoff = Backoff::new(1, 2, Duration::from_micros(1));
        let err = write_all_with_retry(&mut w, &[1u8; 4], &mut backoff).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);

        let mut r = FaultyReader::new(&[0u8; 4][..], faults);
        let mut out = Vec::new();
        let mut backoff = Backoff::new(1, 2, Duration::from_micros(1));
        let err = read_to_end_with_retry(&mut r, &mut out, &mut backoff).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);
    }

    #[test]
    fn wouldblock_surfaces_to_caller() {
        let faults = IoFaults {
            transient_every: Some(1),
            transient_kind: Some(TransientKind::WouldBlock),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults);
        let err = w.write(&[1u8]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let data: Vec<u8> = (0..255u8).collect();
        let faults = IoFaults {
            short_op_every: Some(2),
            transient_every: Some(3),
            transient_kind: Some(TransientKind::Interrupted),
            ..IoFaults::default()
        };
        let mut r = FaultyReader::new(&data[..], faults);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert!(r.stats().short_ops > 0);
    }

    #[test]
    fn truncating_reader_reports_clean_eof() {
        let data = [9u8; 100];
        let faults = IoFaults {
            truncate_at: Some(33),
            ..IoFaults::default()
        };
        let mut r = FaultyReader::new(&data[..], faults);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 33);
    }

    #[test]
    fn worker_fault_targets_modulo_shards() {
        let f = WorkerFault { shard: 6, at_op: 9 };
        assert_eq!(f.trigger_for(2, 4), Some(9));
        assert_eq!(f.trigger_for(3, 4), None);
        assert_eq!(f.trigger_for(6, 8), Some(9));
        assert_eq!(f.trigger_for(0, 0), None);
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let mut a = Backoff::new(11, 3, Duration::from_micros(100));
        let mut b = Backoff::new(11, 3, Duration::from_micros(100));
        let da: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(da, db);
        assert_eq!(da.len(), 3);
        for d in &da {
            assert!(*d <= Duration::from_millis(100));
            assert!(*d >= Duration::from_micros(50));
        }
    }

    #[test]
    fn write_all_with_retry_survives_wouldblock_bursts() {
        let faults = IoFaults {
            transient_every: Some(2),
            transient_kind: Some(TransientKind::WouldBlock),
            short_op_every: Some(3),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults);
        let payload: Vec<u8> = (0..200u8).collect();
        let mut backoff = Backoff::new(1, 8, Duration::from_micros(10));
        write_all_with_retry(&mut w, &payload, &mut backoff).unwrap();
        assert_eq!(w.into_inner(), payload);
    }

    #[test]
    fn write_all_with_retry_gives_up_on_persistent_transient() {
        let faults = IoFaults {
            transient_every: Some(1), // every call fails
            transient_kind: Some(TransientKind::WouldBlock),
            ..IoFaults::default()
        };
        let mut w = FaultyWriter::new(Vec::new(), faults);
        let mut backoff = Backoff::new(1, 3, Duration::from_micros(10));
        let err = write_all_with_retry(&mut w, &[1, 2, 3], &mut backoff).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
        assert_eq!(backoff.attempts(), 3, "budget spent before giving up");
    }

    #[test]
    fn read_to_end_with_retry_recovers_everything() {
        let data: Vec<u8> = (0..251u8).cycle().take(40_000).collect();
        let faults = IoFaults {
            transient_every: Some(2),
            transient_kind: Some(TransientKind::WouldBlock),
            short_op_every: Some(2),
            ..IoFaults::default()
        };
        let mut r = FaultyReader::new(&data[..], faults);
        let mut out = Vec::new();
        let mut backoff = Backoff::new(2, 8, Duration::from_micros(10));
        let n = read_to_end_with_retry(&mut r, &mut out, &mut backoff).unwrap();
        assert_eq!(n, data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn transient_kinds() {
        assert!(is_transient(ErrorKind::Interrupted));
        assert!(is_transient(ErrorKind::WouldBlock));
        assert!(is_transient(ErrorKind::TimedOut));
        assert!(!is_transient(ErrorKind::Other));
        assert!(!is_transient(ErrorKind::UnexpectedEof));
    }
}
