//! FxHash-style fast hashing for the detector's hot tables.
//!
//! Shadow-memory lookups happen on *every* instrumented shared-memory access
//! (over 10^9 of them at paper scale), so the default SipHash tables are far
//! too slow. This is the multiply-rotate hash used by rustc (`FxHasher`),
//! reimplemented here because no fast-hash crate is on the approved
//! dependency list. Keys are small dense integers (task/location ids), for
//! which Fx is close to optimal.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc multiply-rotate hasher. Not DoS-resistant; do not use on
/// attacker-controlled keys. All futrace keys are internally generated ids.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("task"), hash_one("task"));
    }

    #[test]
    fn distinguishes_small_keys() {
        let hashes: Vec<u64> = (0u32..1000).map(hash_one).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), 1000, "no collisions on dense small ints");
    }

    #[test]
    fn byte_tail_handling() {
        // Exercise the chunks_exact remainder path with 1..16 byte inputs.
        let mut seen = FxHashSet::default();
        for len in 1..16usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            assert!(seen.insert(h.finish()), "len {len} collided");
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
