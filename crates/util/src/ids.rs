//! Strongly-typed identifiers shared across the `futrace` crates.
//!
//! All identifiers are dense `u32`-backed indices handed out in creation
//! order by the serial depth-first executor. Using newtypes (rather than raw
//! integers) prevents the classic confusion between task ids, step ids and
//! shadow-memory location ids, at zero runtime cost.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the underlying dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a dense index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("id space exhausted"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a dynamic task instance (main task, `async` task, or
    /// future task). The main task is always `TaskId(0)`; children are
    /// numbered in spawn order, which under serial depth-first execution is
    /// exactly the preorder of the spawn tree.
    TaskId,
    "T"
);

define_id!(
    /// Identifier of a *step* (Definition 1 of the paper): a maximal
    /// sequence of statement instances containing no task/finish/get
    /// boundary. Steps are numbered in serial execution order.
    StepId,
    "S"
);

define_id!(
    /// Identifier of a shared-memory location tracked by shadow memory.
    /// Shared scalars get one `LocId`; shared arrays get one per element.
    LocId,
    "L"
);

define_id!(
    /// Identifier of a dynamic `finish` scope instance.
    FinishId,
    "F"
);

impl TaskId {
    /// The main (root) task of every execution.
    pub const MAIN: TaskId = TaskId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_indices() {
        for i in [0usize, 1, 7, 1 << 20] {
            assert_eq!(TaskId::from_index(i).index(), i);
            assert_eq!(StepId::from_index(i).index(), i);
            assert_eq!(LocId::from_index(i).index(), i);
            assert_eq!(FinishId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ids_order_by_index() {
        assert!(TaskId(1) < TaskId(2));
        assert!(StepId(0) < StepId(10));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TaskId(3).to_string(), "T3");
        assert_eq!(StepId(12).to_string(), "S12");
        assert_eq!(LocId(5).to_string(), "L5");
        assert_eq!(FinishId(1).to_string(), "F1");
        assert_eq!(format!("{:?}", TaskId(3)), "T3");
    }

    #[test]
    fn main_task_is_zero() {
        assert_eq!(TaskId::MAIN, TaskId(0));
    }

    #[test]
    #[should_panic(expected = "id space exhausted")]
    fn overflow_panics() {
        let _ = TaskId::from_index(usize::MAX);
    }
}
