//! Dynamic interval labeling of the spawn tree (§4.1 of the paper).
//!
//! Every task is assigned a label `[pre, post]`. `pre` is the preorder
//! number, assigned when the task is spawned; because race detection is
//! on-the-fly, the final postorder number is unknown until the task
//! terminates, so a *temporary* postorder value is assigned at spawn time,
//! taken from a counter that starts at `MAXINT` and decreases
//! (Algorithms 1–2), and replaced by the real value at termination
//! (Algorithm 3).
//!
//! The scheme maintains the classic subsumption invariant at every moment of
//! the serial depth-first execution: task `x` is a (weak) ancestor of task
//! `y` **iff** `x.pre <= y.pre && y.post >= ... `— concretely,
//! [`Interval::contains`] — because
//!
//! * live (unterminated) tasks form the current spawn stack; the temporary
//!   postorders decrease with depth, so a deeper live task's interval nests
//!   inside every live ancestor's interval;
//! * a terminated task's final postorder is drawn from the same counter as
//!   preorders (`dfid`), so it is larger than the `pre` of every descendant
//!   (all of which spawned before it terminated) and smaller than the
//!   temporary postorder of every live ancestor.
//!
//! Note the `dfid` counter is shared between preorders and final postorders,
//! exactly as in Algorithms 1–3 (`S_C.post ← dfid; dfid ← dfid + 1`).

/// The largest value the temporary-postorder counter starts from.
///
/// Using `u64::MAX / 2` leaves headroom so `dfid` (counting up) and `tmpid`
/// (counting down) can never collide in any realistic execution: that would
/// require more than 2^62 task events.
pub const TMPID_START: u64 = u64::MAX / 2;

/// An interval label `[pre, post]` in the dynamic spawn-tree numbering.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Interval {
    /// Preorder number, final from the moment of spawn.
    pub pre: u64,
    /// Postorder number; temporary (large) while the task is live, final
    /// once it has terminated.
    pub post: u64,
}

impl Interval {
    /// True if this interval subsumes `other`, i.e. the task (or disjoint
    /// set) labeled `self` is a weak ancestor of the one labeled `other`
    /// in the spawn tree (`x.pre <= y.pre && y.post <= x.post`).
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.pre <= other.pre && other.post <= self.post
    }

    /// True if the two intervals are disjoint (neither contains the other).
    /// In a well-formed labeling, intervals are laminar: any two are either
    /// nested or disjoint.
    #[inline]
    pub fn disjoint(&self, other: &Interval) -> bool {
        !self.contains(other) && !other.contains(self)
    }
}

/// Hands out interval labels during a serial depth-first execution,
/// implementing the `dfid` / `tmpid` counters of Algorithms 1–3.
#[derive(Clone, Debug)]
pub struct IntervalLabeler {
    dfid: u64,
    tmpid: u64,
}

impl Default for IntervalLabeler {
    fn default() -> Self {
        Self::new()
    }
}

impl IntervalLabeler {
    /// Fresh labeler; the first label handed out belongs to the main task
    /// and is `[0, TMPID_START]`.
    pub fn new() -> Self {
        IntervalLabeler {
            dfid: 0,
            tmpid: TMPID_START,
        }
    }

    /// Called when a task is spawned (Algorithm 2 lines 2–5): assigns the
    /// next preorder value and a temporary postorder value.
    pub fn on_spawn(&mut self) -> Interval {
        let pre = self.dfid;
        self.dfid += 1;
        let post = self.tmpid;
        self.tmpid -= 1;
        Interval { pre, post }
    }

    /// Called when a task terminates (Algorithm 3): returns the final
    /// postorder value and releases the temporary one.
    pub fn on_terminate(&mut self) -> u64 {
        let post = self.dfid;
        self.dfid += 1;
        self.tmpid += 1;
        post
    }

    /// Current value of the shared `dfid` counter (for diagnostics/tests).
    pub fn dfid(&self) -> u64 {
        self.dfid
    }

    /// Current value of the temporary-id counter (for diagnostics/tests).
    pub fn tmpid(&self) -> u64 {
        self.tmpid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::{self, strategies, Config};

    #[test]
    fn main_task_label() {
        let mut l = IntervalLabeler::new();
        let main = l.on_spawn();
        assert_eq!(main.pre, 0);
        assert_eq!(main.post, TMPID_START);
    }

    #[test]
    fn contains_basics() {
        let a = Interval { pre: 0, post: 100 };
        let b = Interval { pre: 1, post: 50 };
        let c = Interval { pre: 60, post: 70 };
        assert!(a.contains(&b));
        assert!(a.contains(&c));
        assert!(!b.contains(&c));
        assert!(b.disjoint(&c));
        assert!(a.contains(&a), "contains is reflexive");
    }

    /// Drive the labeler through a bracket sequence representing a
    /// depth-first execution and collect final labels plus the spawn tree.
    fn run_tree(brackets: &str) -> (Vec<Interval>, Vec<Option<usize>>) {
        let mut l = IntervalLabeler::new();
        let mut labels = vec![l.on_spawn()]; // main task
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut stack = vec![0usize];
        for ch in brackets.chars() {
            match ch {
                '(' => {
                    let id = labels.len();
                    labels.push(l.on_spawn());
                    parents.push(stack.last().copied());
                    stack.push(id);
                }
                ')' => {
                    let id = stack.pop().expect("balanced");
                    labels[id].post = l.on_terminate();
                }
                _ => unreachable!(),
            }
        }
        // Terminate anything still live, deepest first (including main).
        while let Some(id) = stack.pop() {
            labels[id].post = l.on_terminate();
        }
        (labels, parents)
    }

    fn is_ancestor(parents: &[Option<usize>], a: usize, mut d: usize) -> bool {
        loop {
            if a == d {
                return true;
            }
            match parents[d] {
                Some(p) => d = p,
                None => return false,
            }
        }
    }

    #[test]
    fn labels_encode_ancestry_after_completion() {
        let (labels, parents) = run_tree("(()())(())()");
        let n = labels.len();
        for a in 0..n {
            for d in 0..n {
                assert_eq!(
                    labels[a].contains(&labels[d]),
                    is_ancestor(&parents, a, d),
                    "tasks {a} vs {d}"
                );
            }
        }
    }

    #[test]
    fn labels_encode_ancestry_mid_execution() {
        // Check the invariant at *every* prefix of the execution, where some
        // tasks still carry temporary postorders — the on-the-fly situation
        // the scheme was designed for.
        let brackets = "(()(()))(()())";
        for cut in 0..=brackets.len() {
            let (labels, parents) = run_tree(&brackets[..cut]);
            let n = labels.len();
            for a in 0..n {
                for d in 0..n {
                    assert_eq!(
                        labels[a].contains(&labels[d]),
                        is_ancestor(&parents, a, d),
                        "prefix {cut}: tasks {a} vs {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn terminate_releases_tmpid() {
        let mut l = IntervalLabeler::new();
        let _main = l.on_spawn();
        let t0 = l.tmpid();
        let _c = l.on_spawn();
        assert_eq!(l.tmpid(), t0 - 1);
        l.on_terminate();
        assert_eq!(l.tmpid(), t0, "tmpid is released on termination");
    }

    /// Random bracket strings (random depth-first spawn trees): random
    /// open/close soup repaired into a balanced-prefix sequence by
    /// dropping unmatched ')'. Shrinking drops/shrinks soup characters,
    /// so counterexamples minimize to the smallest failing tree.
    fn bracket_strategy(
    ) -> impl propcheck::Strategy<Repr = Vec<u8>, Value = String> {
        strategies::map(
            strategies::vec_of(strategies::u8_range(0..2), 0, 120),
            |bits: Vec<u8>| {
                let mut depth = 0i32;
                let mut s = String::new();
                for b in bits {
                    match b {
                        1 => {
                            depth += 1;
                            s.push('(');
                        }
                        _ if depth > 0 => {
                            depth -= 1;
                            s.push(')');
                        }
                        _ => {}
                    }
                }
                s
            },
        )
    }

    /// The laminar-family property: at any point of any depth-first
    /// execution, any two task intervals are nested or disjoint, and
    /// containment coincides with spawn-tree ancestry.
    #[test]
    fn interval_labels_are_laminar_and_exact() {
        propcheck::check(&Config::default(), &bracket_strategy(), |brackets| {
            let (labels, parents) = run_tree(&brackets);
            let n = labels.len();
            for a in 0..n {
                for d in 0..n {
                    assert_eq!(
                        labels[a].contains(&labels[d]),
                        is_ancestor(&parents, a, d),
                        "brackets {brackets:?}: tasks {a} vs {d}"
                    );
                    assert!(
                        labels[a].contains(&labels[d])
                            || labels[d].contains(&labels[a])
                            || labels[a].disjoint(&labels[d]),
                        "brackets {brackets:?}: not laminar for {a} vs {d}"
                    );
                }
            }
        });
    }

    /// Preorder values are unique and assigned in spawn order.
    #[test]
    fn preorders_strictly_increase() {
        propcheck::check(&Config::default(), &bracket_strategy(), |brackets| {
            let (labels, _) = run_tree(&brackets);
            for w in labels.windows(2) {
                assert!(w[0].pre < w[1].pre, "brackets {brackets:?}");
            }
        });
    }
}
