//! Support data structures for the `futrace` project.
//!
//! This crate contains the domain-independent building blocks used by the
//! dynamic task reachability graph (DTRG) race detector and its substrates:
//!
//! * [`unionfind`] — a disjoint-set forest with user payloads attached to set
//!   representatives, implementing the `Make-Set` / `Union` / `Find-Set`
//!   interface of the paper (§4.1, "Disjoint set representation of tree
//!   joins") with path compression and union by rank.
//! * [`interval`] — the dynamic preorder/postorder *interval labeling* of the
//!   spawn tree (§4.1, "Interval encoding of spawn tree"), including the
//!   temporary-postorder scheme of Algorithms 1–3.
//! * [`fxhash`] — an FxHash-style hasher plus map/set aliases keyed by small
//!   integers; shadow-memory lookups dominate detector cost, so the default
//!   SipHash tables are replaced throughout.
//! * [`ids`] — strongly-typed identifiers shared by all crates
//!   ([`ids::TaskId`], [`ids::StepId`], [`ids::LocId`], [`ids::FinishId`]).
//! * [`stats`] — running statistics (mean/min/max, counters) used both by the
//!   detector's Table-2 instrumentation and by the bench harness.
//! * [`rng`] — small deterministic RNG (splitmix64 + xoshiro256++, std-only)
//!   used by workload generators so every experiment is reproducible from a
//!   seed.
//! * [`propcheck`] — a minimal in-tree property-testing framework (seeded
//!   generation, configurable case counts, deterministic shrinking with
//!   replayable counterexample seeds) used by every randomized suite in the
//!   workspace; the repository builds and tests fully offline with zero
//!   external dependencies.
//! * [`faultinject`] — seeded deterministic fault plans ([`faultinject::FaultPlan`])
//!   that wrap any `io::Write`/`io::Read` with short ops, transient errors,
//!   hard errors, and truncation, plus worker panic/stall trigger points and
//!   the bounded [`faultinject::Backoff`] retry helper (DESIGN S38).
//! * [`wire`] — the length-delimited varint codec used by checkpoint state
//!   blobs (bounds-checked cursor, bit-exact floats), plus the framed
//!   session wire protocol ([`wire::proto`]) spoken by `tracetool serve`.
//! * [`crc32`] — table-driven CRC-32 (IEEE), one-shot and incremental,
//!   shared by the framed trace format, the corpus manifest, and the wire
//!   protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod faultinject;
pub mod fxhash;
pub mod ids;
pub mod interval;
pub mod propcheck;
pub mod rng;
pub mod stats;
pub mod unionfind;
pub mod wire;

pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{FinishId, LocId, StepId, TaskId};
pub use interval::{Interval, IntervalLabeler};
pub use unionfind::UnionFind;
