//! A minimal in-tree property-testing framework — seeded generation,
//! configurable case counts, and deterministic shrinking — replacing the
//! external `proptest` dependency so the whole workspace builds offline.
//!
//! # Model
//!
//! A [`Strategy`] produces values in two stages: it *generates* an internal
//! representation ([`Strategy::Repr`]) from a seeded [`Rng`], and then
//! *realizes* the value the property actually sees ([`Strategy::Value`]).
//! Shrinking operates on the representation, so mapped strategies (e.g.
//! "random char soup, repaired into a balanced bracket string") shrink at
//! the source and re-map — the same integrated-shrinking structure proptest
//! uses, in miniature.
//!
//! # Determinism and replay
//!
//! Every case's seed is derived from a fixed base seed via splitmix64, so a
//! run is bit-for-bit reproducible. On failure, [`check`] panics with the
//! *minimal* shrunk counterexample and the exact case seed; re-running with
//! `FUTRACE_PROPCHECK_SEED=<that seed>` replays only that case (generation,
//! failure, and shrink all included). `FUTRACE_PROPCHECK_CASES` overrides
//! the case count globally.
//!
//! # Example
//!
//! ```
//! use futrace_util::propcheck::{self, strategies, Config};
//!
//! // Addition of small numbers is commutative.
//! propcheck::check(
//!     &Config::default(),
//!     &strategies::tuple2(strategies::u64_range(0..1000), strategies::u64_range(0..1000)),
//!     |(a, b)| assert_eq!(a + b, b + a),
//! );
//! ```

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a property check runs: case count, shrink budget, base seed.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to generate (proptest's default was 256; we
    /// keep the same floor so ported suites never run fewer cases).
    pub cases: u32,
    /// Upper bound on shrink candidate evaluations after a failure.
    pub max_shrink_steps: u32,
    /// Base seed from which all case seeds are derived.
    pub seed: u64,
    /// Human-readable suite name appended to the replay invocation in the
    /// failure message (e.g. `cargo test -p futrace equivalence` or
    /// `tracetool fuzz`), so the panic line is copy-pasteable as-is.
    pub suite: Option<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_steps: 8192,
            seed: 0xF07_7ACE,
            suite: None,
        }
    }
}

impl Config {
    /// A config running `cases` cases (other fields default).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// A config naming the suite whose invocation replays a failure
    /// (other fields default).
    pub fn named(suite: &'static str) -> Self {
        Config {
            suite: Some(suite),
            ..Config::default()
        }
    }

    /// Same config with `cases` cases.
    pub fn cases(self, cases: u32) -> Self {
        Config { cases, ..self }
    }

    /// The exact command line (environment variable plus suite invocation,
    /// when known) that replays the failing case with this seed.
    pub fn replay_invocation(&self, seed: u64) -> String {
        match self.suite {
            Some(suite) => format!("FUTRACE_PROPCHECK_SEED={seed:#x} {suite}"),
            None => format!("FUTRACE_PROPCHECK_SEED={seed:#x}"),
        }
    }
}

/// A generator of test values with deterministic shrinking. See the module
/// docs for the Repr/Value split.
pub trait Strategy {
    /// Internal representation: what is generated and shrunk.
    type Repr: Clone + Debug;
    /// What the property function receives (via [`Strategy::realize`]).
    type Value;

    /// Generates a representation from the RNG.
    fn generate(&self, rng: &mut Rng) -> Self::Repr;

    /// Maps a representation to the value under test.
    fn realize(&self, repr: &Self::Repr) -> Self::Value;

    /// Proposes smaller representations, most aggressive first. The runner
    /// keeps any candidate on which the property still fails.
    fn shrink(&self, _repr: &Self::Repr) -> Vec<Self::Repr> {
        Vec::new()
    }
}

/// A failed property: the minimal counterexample found plus everything
/// needed to replay it.
#[derive(Clone, Debug)]
pub struct Failure<R> {
    /// Seed of the failing case — `FUTRACE_PROPCHECK_SEED=<seed>` replays it.
    pub seed: u64,
    /// Zero-based index of the failing case in this run.
    pub case: u32,
    /// Number of shrink candidates evaluated.
    pub shrink_steps: u32,
    /// Minimal failing representation.
    pub repr: R,
    /// Panic message of the minimal failing run.
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Derives the seed of case `i` from the base seed.
fn case_seed(base: u64, i: u32) -> u64 {
    let mut state = base ^ (u64::from(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// Runs the property on one realized value, capturing panics.
fn run_case<S, P>(strategy: &S, repr: &S::Repr, prop: &P) -> Result<(), String>
where
    S: Strategy,
    P: Fn(S::Value),
{
    let value = strategy.realize(repr);
    catch_unwind(AssertUnwindSafe(|| prop(value))).map_err(panic_message)
}

/// Like [`check`], but returns the failure instead of panicking — used by
/// the framework's own tests and available for callers that want to
/// inspect counterexamples programmatically.
pub fn check_silent<S, P>(config: &Config, strategy: &S, prop: P) -> Option<Failure<S::Repr>>
where
    S: Strategy,
    P: Fn(S::Value),
{
    let replay = std::env::var("FUTRACE_PROPCHECK_SEED").ok().and_then(|v| {
        let v = v.trim();
        if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        }
    });
    let cases = std::env::var("FUTRACE_PROPCHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);

    let seeds: Vec<(u32, u64)> = match replay {
        // Replay mode: exactly the one requested case.
        Some(seed) => vec![(0, seed)],
        None => (0..cases).map(|i| (i, case_seed(config.seed, i))).collect(),
    };

    for (case, seed) in seeds {
        let mut rng = Rng::seeded(seed);
        let repr = strategy.generate(&mut rng);
        if let Err(first_message) = run_case(strategy, &repr, &prop) {
            let (repr, message, shrink_steps) =
                shrink_failure(config, strategy, repr, first_message, &prop);
            return Some(Failure {
                seed,
                case,
                shrink_steps,
                repr,
                message,
            });
        }
    }
    None
}

fn shrink_failure<S, P>(
    config: &Config,
    strategy: &S,
    mut repr: S::Repr,
    mut message: String,
    prop: &P,
) -> (S::Repr, String, u32)
where
    S: Strategy,
    P: Fn(S::Value),
{
    let mut steps = 0u32;
    'outer: loop {
        for candidate in strategy.shrink(&repr) {
            if steps >= config.max_shrink_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(m) = run_case(strategy, &candidate, prop) {
                repr = candidate;
                message = m;
                continue 'outer;
            }
        }
        break; // no candidate still fails: local minimum reached
    }
    (repr, message, steps)
}

/// Checks `prop` on `config.cases` generated values; on failure, shrinks
/// to a minimal counterexample and panics with a message containing the
/// minimal value, the original assertion message, and the replay seed.
pub fn check<S, P>(config: &Config, strategy: &S, prop: P)
where
    S: Strategy,
    P: Fn(S::Value),
{
    if let Some(f) = check_silent(config, strategy, prop) {
        panic!(
            "propcheck: property failed (case {}/{}, {} shrink steps)\n  \
             minimal counterexample: {:?}\n  \
             failure: {}\n  \
             replay with: {}",
            f.case + 1,
            config.cases,
            f.shrink_steps,
            f.repr,
            f.message,
            config.replay_invocation(f.seed),
        );
    }
}

/// Built-in strategies and combinators.
pub mod strategies {
    use super::Strategy;
    use crate::rng::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Integer shrink candidates: toward zero (or the range start).
    fn shrink_toward(lo: u64, v: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                out.push(mid);
            }
            out.push(v - 1);
        }
        out.dedup();
        out
    }

    /// Any `u64` (full range), shrinking toward 0.
    pub struct AnyU64;

    impl Strategy for AnyU64 {
        type Repr = u64;
        type Value = u64;
        fn generate(&self, rng: &mut Rng) -> u64 {
            rng.next_u64()
        }
        fn realize(&self, r: &u64) -> u64 {
            *r
        }
        fn shrink(&self, r: &u64) -> Vec<u64> {
            shrink_toward(0, *r)
        }
    }

    /// Any `u64`, shrinking toward 0.
    pub fn any_u64() -> AnyU64 {
        AnyU64
    }

    /// Uniform integer in a half-open range, shrinking toward the start.
    pub struct IntRange<T> {
        lo: u64,
        hi: u64,
        _marker: PhantomData<T>,
    }

    macro_rules! impl_int_range_strategy {
        ($($fn_name:ident, $t:ty);*) => {$(
            /// Uniform value in `range`, shrinking toward `range.start`.
            pub fn $fn_name(range: Range<$t>) -> IntRange<$t> {
                assert!(range.start < range.end, "empty range");
                IntRange { lo: range.start as u64, hi: range.end as u64, _marker: PhantomData }
            }

            impl Strategy for IntRange<$t> {
                type Repr = $t;
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    rng.gen_range(self.lo..self.hi) as $t
                }
                fn realize(&self, r: &$t) -> $t {
                    *r
                }
                fn shrink(&self, r: &$t) -> Vec<$t> {
                    shrink_toward(self.lo, *r as u64)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_int_range_strategy!(
        u8_range, u8;
        u16_range, u16;
        u32_range, u32;
        u64_range, u64;
        usize_range, usize
    );

    /// Vectors of `elem` values with length in `[min_len, max_len)`.
    ///
    /// Shrinks by dropping the back half, dropping single elements, and
    /// shrinking individual elements (one replacement per position per
    /// round), never going below `min_len`.
    pub struct VecOf<S> {
        elem: S,
        min_len: usize,
        max_len: usize,
    }

    /// Vector strategy over `elem` with `len ∈ [min_len, max_len)`.
    pub fn vec_of<S: Strategy>(elem: S, min_len: usize, max_len: usize) -> VecOf<S> {
        assert!(min_len < max_len, "empty length range");
        VecOf {
            elem,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecOf<S> {
        type Repr = Vec<S::Repr>;
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Repr> {
            let len = rng.gen_range(self.min_len..self.max_len);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn realize(&self, r: &Vec<S::Repr>) -> Vec<S::Value> {
            r.iter().map(|e| self.elem.realize(e)).collect()
        }

        fn shrink(&self, r: &Vec<S::Repr>) -> Vec<Vec<S::Repr>> {
            let mut out = Vec::new();
            let n = r.len();
            // Drop the back half, then the front half.
            if n / 2 >= self.min_len && n >= 2 {
                out.push(r[..n / 2].to_vec());
                out.push(r[n - n / 2..].to_vec());
            }
            // Drop single elements.
            if n > self.min_len {
                for i in 0..n {
                    let mut v = r.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Shrink elements in place (first candidate per position).
            for i in 0..n {
                if let Some(smaller) = self.elem.shrink(&r[i]).into_iter().next() {
                    let mut v = r.clone();
                    v[i] = smaller;
                    out.push(v);
                }
            }
            out
        }
    }

    /// Maps a strategy's output through a pure function; shrinking happens
    /// on the underlying representation and re-maps.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    /// `map(s, f)`: realize as `f(s_value)`.
    pub fn map<S, F, V>(inner: S, f: F) -> Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> V,
    {
        Map { inner, f }
    }

    impl<S, F, V> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> V,
    {
        type Repr = S::Repr;
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> S::Repr {
            self.inner.generate(rng)
        }
        fn realize(&self, r: &S::Repr) -> V {
            (self.f)(self.inner.realize(r))
        }
        fn shrink(&self, r: &S::Repr) -> Vec<S::Repr> {
            self.inner.shrink(r)
        }
    }

    /// A strategy defined by a pair of closures — an escape hatch for
    /// bespoke value types (e.g. operation enums in model-based tests).
    pub struct FromFn<R, G, H> {
        gen_fn: G,
        shrink_fn: H,
        _marker: PhantomData<R>,
    }

    /// `from_fn(gen, shrink)`: `Repr = Value = R`.
    pub fn from_fn<R, G, H>(gen_fn: G, shrink_fn: H) -> FromFn<R, G, H>
    where
        R: Clone + Debug,
        G: Fn(&mut Rng) -> R,
        H: Fn(&R) -> Vec<R>,
    {
        FromFn {
            gen_fn,
            shrink_fn,
            _marker: PhantomData,
        }
    }

    impl<R, G, H> Strategy for FromFn<R, G, H>
    where
        R: Clone + Debug,
        G: Fn(&mut Rng) -> R,
        H: Fn(&R) -> Vec<R>,
    {
        type Repr = R;
        type Value = R;
        fn generate(&self, rng: &mut Rng) -> R {
            (self.gen_fn)(rng)
        }
        fn realize(&self, r: &R) -> R {
            r.clone()
        }
        fn shrink(&self, r: &R) -> Vec<R> {
            (self.shrink_fn)(r)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($fn_name:ident; $($S:ident $idx:tt),+) => {
            /// Tuple of independent strategies; shrinks one component at a
            /// time.
            #[allow(non_snake_case)]
            pub fn $fn_name<$($S: Strategy),+>($($S: $S),+) -> ($($S,)+) {
                ($($S,)+)
            }

            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Repr = ($($S::Repr,)+);
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Repr {
                    ($(self.$idx.generate(rng),)+)
                }

                fn realize(&self, r: &Self::Repr) -> Self::Value {
                    ($(self.$idx.realize(&r.$idx),)+)
                }

                fn shrink(&self, r: &Self::Repr) -> Vec<Self::Repr> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&r.$idx) {
                            let mut v = r.clone();
                            v.$idx = cand;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple_strategy!(tuple2; A 0, B 1);
    impl_tuple_strategy!(tuple3; A 0, B 1, C 2);
    impl_tuple_strategy!(tuple4; A 0, B 1, C 2, D 3);
}

#[cfg(test)]
mod tests {
    use super::strategies::*;
    use super::*;

    #[test]
    fn passing_property_returns_none() {
        let failure = check_silent(&Config::with_cases(64), &any_u64(), |v| {
            assert_eq!(v, v);
        });
        assert!(failure.is_none());
    }

    #[test]
    fn failing_property_reports_seed_and_minimum() {
        // v >= 1000 fails; shrinking toward 0 must land exactly on 1000.
        let cfg = Config::with_cases(64);
        let failure = check_silent(&cfg, &any_u64(), |v| {
            assert!(v < 1000, "too big: {v}");
        })
        .expect("property must fail");
        assert_eq!(failure.repr, 1000, "minimal counterexample");
        assert!(failure.message.contains("too big"));
        // The reported seed deterministically regenerates the failing case.
        let mut rng = Rng::seeded(failure.seed);
        let regenerated = any_u64().generate(&mut rng);
        assert!(regenerated >= 1000, "replay seed must reproduce a failure");
    }

    #[test]
    fn vec_shrinks_to_minimal_length() {
        // "Contains at least 3 elements" fails; minimum is any 3-vector,
        // and element shrinking takes every entry to 0.
        let cfg = Config::default();
        let failure = check_silent(&cfg, &vec_of(u32_range(0..100), 0, 40), |v| {
            assert!(v.len() < 3);
        })
        .expect("property must fail");
        assert_eq!(failure.repr.len(), 3);
        assert!(failure.repr.iter().all(|&x| x == 0));
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let cfg = Config::default();
        let strat = tuple2(u32_range(0..50), u32_range(0..50));
        let failure = check_silent(&cfg, &strat, |(a, b)| {
            assert!(a + b < 30);
        })
        .expect("property must fail");
        let (a, b) = failure.repr;
        // Local minimum of a+b >= 30 under per-component shrinking: the
        // sum sits exactly on the boundary.
        assert_eq!(a + b, 30, "shrunk to the boundary, got ({a}, {b})");
    }

    /// The planted-bug shrinker self-test: bracket strings (depth-first
    /// spawn trees, as in `futrace-util::interval`'s suite) with a bug
    /// that trips whenever nesting depth reaches 3. propcheck must shrink
    /// any failure to the minimal counterexample `(((` and report a
    /// replayable seed.
    #[test]
    fn shrinker_finds_minimal_deep_nesting() {
        // Char soup repaired into a balanced-prefix bracket string —
        // the same construction as the interval-label suite.
        let brackets = map(vec_of(u8_range(0..2), 0, 120), |bits: Vec<u8>| {
            let mut depth = 0i32;
            let mut s = String::new();
            for b in bits {
                match b {
                    1 => {
                        depth += 1;
                        s.push('(');
                    }
                    _ if depth > 0 => {
                        depth -= 1;
                        s.push(')');
                    }
                    _ => {}
                }
            }
            s
        });
        let max_depth = |s: &str| {
            let mut d = 0i32;
            let mut max = 0i32;
            for c in s.chars() {
                d += if c == '(' { 1 } else { -1 };
                max = max.max(d);
            }
            max
        };
        let cfg = Config::default();
        let failure = check_silent(&cfg, &brackets, |s| {
            // Planted bug: "fails for nesting depth >= 3".
            assert!(max_depth(&s) < 3, "deep nesting: {s:?}");
        })
        .expect("the planted bug must be found within the default cases");
        // Minimal counterexample: exactly three opens, nothing else.
        assert_eq!(failure.repr, vec![1, 1, 1], "repr is the char soup");
        assert!(failure.message.contains("deep nesting"));

        // The reported seed replays the same failing case from scratch.
        let mut rng = Rng::seeded(failure.seed);
        let repr = brackets.generate(&mut rng);
        let s = brackets.realize(&repr);
        assert!(max_depth(&s) >= 3, "replayed case must still fail");
    }

    #[test]
    fn failure_message_contains_the_replay_invocation() {
        // The panic message is an operator interface: it must carry the
        // exact environment-variable invocation (with the suite name when
        // configured) so a failure can be replayed by copy-paste.
        let run = |cfg: Config| {
            let payload = catch_unwind(AssertUnwindSafe(|| {
                check(&cfg, &any_u64(), |v| assert!(v < 1000, "too big: {v}"));
            }))
            .expect_err("property must fail");
            panic_message(payload)
        };

        let msg = run(Config::named("cargo test -p futrace-util propcheck").cases(64));
        assert!(msg.starts_with("propcheck: property failed (case "), "{msg}");
        assert!(msg.contains("/64, "), "case count of the config: {msg}");
        assert!(msg.contains("minimal counterexample: 1000"), "{msg}");
        assert!(msg.contains("failure: too big: "), "{msg}");
        let replay_line = msg
            .lines()
            .find(|l| l.trim_start().starts_with("replay with: "))
            .expect("replay line present");
        assert!(
            replay_line
                .trim_start()
                .strip_prefix("replay with: FUTRACE_PROPCHECK_SEED=0x")
                .is_some_and(|rest| {
                    rest.split_once(' ').is_some_and(|(seed, suite)| {
                        u64::from_str_radix(seed, 16).is_ok()
                            && suite == "cargo test -p futrace-util propcheck"
                    })
                }),
            "replay line is `FUTRACE_PROPCHECK_SEED=<hex> <suite>`: {replay_line}"
        );

        // Without a suite name the invocation is just the env var.
        let msg = run(Config::with_cases(64));
        let replay_line = msg
            .lines()
            .find(|l| l.trim_start().starts_with("replay with: "))
            .expect("replay line present");
        let rest = replay_line
            .trim_start()
            .strip_prefix("replay with: FUTRACE_PROPCHECK_SEED=0x")
            .expect("env var prefix");
        assert!(
            u64::from_str_radix(rest.trim(), 16).is_ok(),
            "bare seed parses as hex: {replay_line}"
        );
    }

    #[test]
    fn replay_invocation_formats() {
        assert_eq!(
            Config::default().replay_invocation(0x2a),
            "FUTRACE_PROPCHECK_SEED=0x2a"
        );
        assert_eq!(
            Config::named("tracetool fuzz --programs 1").replay_invocation(7),
            "FUTRACE_PROPCHECK_SEED=0x7 tracetool fuzz --programs 1"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            let failure = check_silent(&Config::with_cases(32), &any_u64(), |v| {
                seen.borrow_mut().push(v);
            });
            assert!(failure.is_none());
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
