//! Deterministic random-number helpers for workload generation.
//!
//! Every random workload in the repository (random programs, synthetic
//! inputs for Crypt, etc.) is generated from an explicit `u64` seed via
//! these helpers, so experiments and property-test counterexamples are
//! reproducible bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the project-standard small, fast, deterministic RNG from a seed.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Fills a byte buffer deterministically from a seed (used for Crypt's
/// plaintext, mirroring JGF's pseudorandom input generation).
pub fn fill_bytes(seed: u64, buf: &mut [u8]) {
    let mut rng = seeded(seed);
    rng.fill(buf);
}

/// Splits one seed into `n` independent stream seeds via splitmix64, so
/// parallel workload pieces don't share an RNG.
pub fn split_seeds(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            // splitmix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded(7);
            (0..32).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(7);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut x = [0u8; 64];
        let mut y = [0u8; 64];
        fill_bytes(3, &mut x);
        fill_bytes(3, &mut y);
        assert_eq!(x, y);
        assert_ne!(x, [0u8; 64]);
    }

    #[test]
    fn split_seeds_unique() {
        let seeds = split_seeds(42, 100);
        let set: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(seeds, split_seeds(42, 100));
    }
}
