//! Deterministic random-number generation for workload generation and
//! property testing — std-only, no external crates.
//!
//! Every random workload in the repository (random programs, synthetic
//! inputs for Crypt, etc.) is generated from an explicit `u64` seed via
//! these helpers, so experiments and property-test counterexamples are
//! reproducible bit-for-bit. The generator is **xoshiro256++** seeded
//! through **splitmix64**, both fully specified here in ~30 lines of
//! integer arithmetic: the exact output streams are part of this crate's
//! contract (locked by golden-vector tests) so a counterexample seed
//! printed by [`crate::propcheck`] today replays identically on any
//! platform and after any refactor.

use std::ops::{Range, RangeInclusive};

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output. Used for seed expansion ([`Rng::seeded`]) and stream
/// splitting ([`split_seeds`]).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The project-standard small, fast, deterministic RNG: xoshiro256++.
///
/// 256 bits of state, period 2^256 − 1, and excellent statistical quality
/// for workload generation. Not cryptographic.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates an RNG from a `u64` seed by expanding it with splitmix64
    /// (the initialization the xoshiro authors recommend; it also
    /// guarantees a nonzero state for every seed, including 0).
    pub fn seeded(seed: u64) -> Rng {
        let mut state = seed;
        Rng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits (the xoshiro256++ output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits (upper half of [`Rng::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value in `range`, which may be a half-open (`lo..hi`) or
    /// inclusive (`lo..=hi`) range over the unsigned integer types /
    /// `usize`, or a half-open `f64` range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fills `buf` with random bytes (little-endian chunks of
    /// [`Rng::next_u64`]).
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// A uniform `u64` in `[0, span)` via Lemire's multiply-shift method.
    /// The bias is at most `span / 2^64` — irrelevant for workload
    /// generation, and the method is branch-free and deterministic.
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "gen_range called with an empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range called with an empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Creates the project-standard small, fast, deterministic RNG from a seed.
pub fn seeded(seed: u64) -> Rng {
    Rng::seeded(seed)
}

/// Fills a byte buffer deterministically from a seed (used for Crypt's
/// plaintext, mirroring JGF's pseudorandom input generation).
pub fn fill_bytes(seed: u64, buf: &mut [u8]) {
    let mut rng = seeded(seed);
    rng.fill(buf);
}

/// Splits one seed into `n` independent stream seeds via splitmix64, so
/// parallel workload pieces don't share an RNG.
pub fn split_seeds(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n).map(|_| splitmix64(&mut state)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = seeded(7);
            (0..32).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(7);
            (0..32).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut x = [0u8; 64];
        let mut y = [0u8; 64];
        fill_bytes(3, &mut x);
        fill_bytes(3, &mut y);
        assert_eq!(x, y);
        assert_ne!(x, [0u8; 64]);
    }

    #[test]
    fn fill_handles_non_multiple_of_eight() {
        // A 13-byte buffer must equal the prefix of a 16-byte buffer from
        // the same seed (chunked little-endian consumption).
        let mut short = [0u8; 13];
        let mut long = [0u8; 16];
        fill_bytes(9, &mut short);
        fill_bytes(9, &mut long);
        assert_eq!(short[..], long[..13]);
    }

    #[test]
    fn split_seeds_unique() {
        let seeds = split_seeds(42, 100);
        let set: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(seeds, split_seeds(42, 100));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = seeded(11);
        for _ in 0..2000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1usize..=6);
            assert!((1..=6).contains(&w));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let b = r.gen_range(0u8..4);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = seeded(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    // ---- Golden vectors ------------------------------------------------
    //
    // These lock the exact output streams. If any of them ever changes,
    // every recorded propcheck counterexample seed and every seeded
    // workload in EXPERIMENTS.md silently changes meaning — so a failure
    // here must be treated as a bug in the change, not in the test.

    #[test]
    fn golden_splitmix64() {
        // First outputs from state 0 and from state 42.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        let mut s = 42u64;
        assert_eq!(splitmix64(&mut s), 0xBDD7_3226_2FEB_6E95);
    }

    #[test]
    fn golden_xoshiro_from_known_state() {
        // First output for state [1, 2, 3, 4], derivable by hand:
        // rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1 = (5 << 23) + 1.
        let mut r = Rng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    fn golden_seeded_streams() {
        let first4 = |seed: u64| {
            let mut r = seeded(seed);
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()]
        };
        assert_eq!(
            first4(0),
            [
                0x5317_5D61_490B_23DF,
                0x61DA_6F3D_C380_D507,
                0x5C0F_DF91_EC9A_7BFC,
                0x02EE_BF8C_3BBE_5E1A,
            ]
        );
        assert_eq!(
            first4(42),
            [
                0xD076_4D4F_4476_689F,
                0x519E_4174_576F_3791,
                0xFBE0_7CFB_0C24_ED8C,
                0xB37D_9F60_0CD8_35B8,
            ]
        );
    }

    #[test]
    fn golden_fill_bytes() {
        let mut buf = [0u8; 12];
        fill_bytes(7, &mut buf);
        assert_eq!(
            buf,
            [0x3D, 0x91, 0xAE, 0x2A, 0x00, 0x1A, 0x2C, 0x0E, 0x14, 0x9E, 0x4E, 0xFA]
        );
    }

    #[test]
    fn golden_split_seeds() {
        assert_eq!(
            split_seeds(1, 3),
            [
                0x910A_2DEC_8902_5CC1,
                0xBEEB_8DA1_658E_EC67,
                0xF893_A2EE_FB32_555E,
            ]
        );
    }
}
