//! Running statistics and timing helpers shared by the detector's
//! instrumentation counters and the Table-2 bench harness.

use std::time::{Duration, Instant};

/// Online accumulator for count/mean/min/max of a stream of `f64` samples
/// (Welford's algorithm for the mean; variance tracked for bench reporting).
#[derive(Clone, Debug, Default)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0.0 if empty — convenient for the #AvgReaders
    /// column, which is defined as an average over accesses and is zero when
    /// no access occurred).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (`n-1` denominator); 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw accumulator state `(count, mean, m2, min, max)`, for
    /// bit-exact checkpoint serialization. Round-trips through
    /// [`Running::from_raw`] without any loss, so a resumed analysis
    /// reports the same distribution a fresh run would.
    pub fn to_raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Running::to_raw`] state.
    pub fn from_raw(raw: (u64, f64, f64, f64, f64)) -> Running {
        Running {
            count: raw.0,
            mean: raw.1,
            m2: raw.2,
            min: raw.3,
            max: raw.4,
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wall-clock timer for the Seq/Racedet columns of Table 2.
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since `start`.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as `f64` (Table 2's unit).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// Nearest-rank percentile over an already **sorted ascending** slice.
///
/// For `p` in `(0, 100]` the rank is `ceil(p * n / 100)` (1-indexed), so
/// the result is always an actual sample — never an interpolated value —
/// which keeps aggregate reports byte-deterministic. `p = 0` is clamped
/// to the first sample. Returns `None` on an empty slice.
///
/// Deterministic on ties by construction: equal samples are
/// indistinguishable, so any stable or unstable sort yields the same
/// value at every rank.
///
/// # Panics
///
/// Panics if `p > 100`.
pub fn nearest_rank<T: Copy>(sorted: &[T], p: u32) -> Option<T> {
    assert!(p <= 100, "percentile must be in 0..=100, got {p}");
    let n = sorted.len();
    if n == 0 {
        return None;
    }
    // ceil(p * n / 100) without floats: exact for every n, p that fits.
    let rank = ((p as u128 * n as u128).div_ceil(100)).max(1) as usize;
    Some(sorted[rank - 1])
}

/// The p50/p90/p99 summary the corpus aggregate report uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles<T> {
    /// Median (nearest-rank).
    pub p50: T,
    /// 90th percentile (nearest-rank).
    pub p90: T,
    /// 99th percentile (nearest-rank).
    pub p99: T,
}

/// p50/p90/p99 of integer samples (sorted internally; input order is
/// irrelevant to the result). Returns `None` on an empty slice.
pub fn percentiles_u64(samples: &[u64]) -> Option<Percentiles<u64>> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    Some(Percentiles {
        p50: nearest_rank(&sorted, 50)?,
        p90: nearest_rank(&sorted, 90)?,
        p99: nearest_rank(&sorted, 99)?,
    })
}

/// p50/p90/p99 of float samples, totally ordered via [`f64::total_cmp`]
/// (NaNs sort last rather than poisoning the sort). Returns `None` on an
/// empty slice.
pub fn percentiles_f64(samples: &[f64]) -> Option<Percentiles<f64>> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    Some(Percentiles {
        p50: nearest_rank(&sorted, 50)?,
        p90: nearest_rank(&sorted, 90)?,
        p99: nearest_rank(&sorted, 99)?,
    })
}

/// Runs `f` a total of `reps` times and returns the mean wall-clock
/// milliseconds, mirroring the paper's "mean execution time of 10 runs
/// repeated in the same JVM instance".
pub fn mean_time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0);
    let mut acc = Running::new();
    for _ in 0..reps {
        let t = Timer::start();
        let out = f();
        acc.push(t.elapsed_ms());
        std::hint::black_box(out);
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_running() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert!(r.min().is_none());
        assert!(r.max().is_none());
    }

    #[test]
    fn mean_min_max() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 6.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 3);
        assert!((r.mean() - 4.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(6.0));
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&Running::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_matches_hand_computed_ranks() {
        // n = 5: rank(p) = ceil(5p/100) → p50→3rd, p90→5th, p99→5th.
        let sorted = [10u64, 20, 30, 40, 50];
        assert_eq!(nearest_rank(&sorted, 50), Some(30));
        assert_eq!(nearest_rank(&sorted, 90), Some(50));
        assert_eq!(nearest_rank(&sorted, 99), Some(50));
        assert_eq!(nearest_rank(&sorted, 100), Some(50));
        // p=0 clamps to the first sample instead of rank 0.
        assert_eq!(nearest_rank(&sorted, 0), Some(10));
        // Boundary exactness: p20 of 5 samples is exactly the 1st.
        assert_eq!(nearest_rank(&sorted, 20), Some(10));
        assert_eq!(nearest_rank(&sorted, 21), Some(20));
    }

    #[test]
    fn nearest_rank_single_sample_and_empty() {
        assert_eq!(nearest_rank(&[7u64], 50), Some(7));
        assert_eq!(nearest_rank(&[7u64], 99), Some(7));
        assert_eq!(nearest_rank::<u64>(&[], 50), None);
        assert!(percentiles_u64(&[]).is_none());
        assert!(percentiles_f64(&[]).is_none());
    }

    #[test]
    fn percentiles_are_actual_samples_and_order_independent() {
        let fwd: Vec<u64> = (1..=100).collect();
        let rev: Vec<u64> = (1..=100).rev().collect();
        let p = percentiles_u64(&fwd).unwrap();
        assert_eq!(p, percentiles_u64(&rev).unwrap());
        assert_eq!((p.p50, p.p90, p.p99), (50, 90, 99));
        assert!(fwd.contains(&p.p50) && fwd.contains(&p.p90) && fwd.contains(&p.p99));
    }

    #[test]
    fn percentiles_deterministic_on_ties() {
        // All-equal samples: every rank returns the same value no matter
        // how the sort permutes them.
        let samples = [4u64; 17];
        let p = percentiles_u64(&samples).unwrap();
        assert_eq!((p.p50, p.p90, p.p99), (4, 4, 4));
        let f = percentiles_f64(&[2.5; 9]).unwrap();
        assert_eq!((f.p50, f.p90, f.p99), (2.5, 2.5, 2.5));
    }

    #[test]
    fn float_percentiles_use_total_order() {
        let samples = [3.0, 1.0, f64::NAN, 2.0];
        let p = percentiles_f64(&samples).unwrap();
        // NaN sorts last under total_cmp, so the median of 4 is the 2nd.
        assert_eq!(p.p50, 2.0);
        assert!(p.p99.is_nan());
    }

    #[test]
    #[should_panic(expected = "percentile must be in 0..=100")]
    fn nearest_rank_rejects_out_of_range_p() {
        let _ = nearest_rank(&[1u64], 101);
    }

    #[test]
    fn mean_time_measures_something() {
        let ms = mean_time_ms(3, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(ms >= 0.0);
        assert!(ms < 10_000.0);
    }
}
