//! Disjoint-set forest (union-find) with payloads attached to set
//! representatives.
//!
//! The paper's DTRG partitions tasks into disjoint sets connected by
//! tree-join and continue edges (§4.1). Each set carries attributes — the
//! interval label, the set of incoming non-tree edges `nt`, and the lowest
//! significant ancestor `lsa` — which the `Merge` operation (Algorithm 7)
//! combines. This module provides the generic machinery: a classic
//! union-find with *union by rank* and *path compression* (amortized
//! `O(α(m,n))`, [CLRS ch. 21]) where each set's payload lives at its current
//! representative and moves when sets merge.
//!
//! Unlike textbook union-find, `union` here is **directed**: the caller
//! decides which payload survives by providing a combining closure, because
//! Algorithm 7 keeps the *ancestor-most* set's label and `lsa` while
//! unioning the `nt` sets.

/// A disjoint-set forest over dense `usize` keys, with one payload `P` per
/// set stored at the representative.
#[derive(Clone, Debug)]
pub struct UnionFind<P> {
    /// parent[i] == i for representatives.
    parent: Vec<u32>,
    /// Union-by-rank rank; only meaningful for representatives.
    rank: Vec<u8>,
    /// payload[i] is `Some` iff `i` is currently a representative.
    payload: Vec<Option<P>>,
}

impl<P> Default for UnionFind<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> UnionFind<P> {
    /// Creates an empty forest.
    pub fn new() -> Self {
        UnionFind {
            parent: Vec::new(),
            rank: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Creates an empty forest with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        UnionFind {
            parent: Vec::with_capacity(cap),
            rank: Vec::with_capacity(cap),
            payload: Vec::with_capacity(cap),
        }
    }

    /// Number of elements ever created with [`UnionFind::make_set`].
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if no element has been created yet.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// `Make-Set(x)`: creates a fresh singleton set with the given payload
    /// and returns its key. Keys are dense and handed out in creation order,
    /// so callers can use task ids directly.
    pub fn make_set(&mut self, payload: P) -> usize {
        let key = self.parent.len();
        let key32 = u32::try_from(key).expect("union-find key space exhausted");
        self.parent.push(key32);
        self.rank.push(0);
        self.payload.push(Some(payload));
        key
    }

    /// `Find-Set(x)`: returns the representative of `x`'s set, compressing
    /// the path on the way.
    pub fn find(&mut self, x: usize) -> usize {
        debug_assert!(x < self.parent.len(), "find on unknown key {x}");
        // Iterative two-pass path compression: find the root, then repoint
        // every node on the path directly at it.
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Read-only find that does not compress paths (usable through `&self`).
    pub fn find_no_compress(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// True if `a` and `b` are currently in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Immutable access to the payload of the set containing `x`.
    pub fn payload(&mut self, x: usize) -> &P {
        let r = self.find(x);
        self.payload[r].as_ref().expect("representative payload")
    }

    /// Mutable access to the payload of the set containing `x`.
    pub fn payload_mut(&mut self, x: usize) -> &mut P {
        let r = self.find(x);
        self.payload[r].as_mut().expect("representative payload")
    }

    /// Payload access without path compression (for `&self` contexts).
    pub fn payload_no_compress(&self, x: usize) -> &P {
        let r = self.find_no_compress(x);
        self.payload[r].as_ref().expect("representative payload")
    }

    /// `Union(A, B)` with payload combination: merges the sets containing
    /// `a` and `b`. The surviving payload is `combine(payload_a, payload_b)`
    /// where `payload_a` belonged to `a`'s set. Returns the new
    /// representative. If `a` and `b` are already in the same set, the
    /// payload is untouched and the current representative returned — the
    /// paper's `Merge` may legitimately be called on already-merged sets
    /// (e.g. a `get()` followed by the end of the enclosing finish).
    pub fn union_with(
        &mut self,
        a: usize,
        b: usize,
        combine: impl FnOnce(P, P) -> P,
    ) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let pa = self.payload[ra].take().expect("payload a");
        let pb = self.payload[rb].take().expect("payload b");
        let merged = combine(pa, pb);
        // Union by rank for the tree shape; the payload always follows the
        // surviving representative regardless of which side "wins" rank-wise.
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner as u32;
        if self.rank[winner] == self.rank[loser] {
            self.rank[winner] += 1;
        }
        self.payload[winner] = Some(merged);
        winner
    }

    /// Iterator over current representatives and their payloads.
    pub fn sets(&self) -> impl Iterator<Item = (usize, &P)> {
        self.payload
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p)))
    }

    /// Number of distinct sets currently in the forest.
    pub fn set_count(&self) -> usize {
        self.payload.iter().filter(|p| p.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::{self, strategies, Config};

    #[test]
    fn singletons_are_their_own_reps() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        let a = uf.make_set(10);
        let b = uf.make_set(20);
        assert_eq!(uf.find(a), a);
        assert_eq!(uf.find(b), b);
        assert_eq!(*uf.payload(a), 10);
        assert_eq!(*uf.payload(b), 20);
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn union_combines_payloads() {
        let mut uf: UnionFind<Vec<u32>> = UnionFind::new();
        let a = uf.make_set(vec![1]);
        let b = uf.make_set(vec![2]);
        let c = uf.make_set(vec![3]);
        uf.union_with(a, b, |mut x, y| {
            x.extend(y);
            x
        });
        assert!(uf.same_set(a, b));
        assert!(!uf.same_set(a, c));
        let mut merged = uf.payload(a).clone();
        merged.sort_unstable();
        assert_eq!(merged, vec![1, 2]);
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn union_of_same_set_is_noop() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        let a = uf.make_set(1);
        let b = uf.make_set(2);
        uf.union_with(a, b, |x, y| x + y);
        let before = *uf.payload(a);
        uf.union_with(a, b, |x, y| x + y + 100);
        assert_eq!(*uf.payload(a), before, "repeat union must not re-combine");
    }

    #[test]
    fn directed_combine_keeps_first_argument_semantics() {
        // Algorithm 7 keeps S_A's label; model the label as the payload and
        // check the combiner sees (payload of `a`'s set, payload of `b`'s set).
        let mut uf: UnionFind<&'static str> = UnionFind::new();
        let a = uf.make_set("ancestor");
        let b = uf.make_set("descendant");
        uf.union_with(b, a, |pb, pa| {
            assert_eq!(pb, "descendant");
            assert_eq!(pa, "ancestor");
            pa
        });
        assert_eq!(*uf.payload(a), "ancestor");
        assert_eq!(*uf.payload(b), "ancestor");
    }

    #[test]
    fn payload_mut_updates_whole_set() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        let a = uf.make_set(0);
        let b = uf.make_set(0);
        uf.union_with(a, b, |x, _| x);
        *uf.payload_mut(b) = 99;
        assert_eq!(*uf.payload(a), 99);
    }

    #[test]
    fn find_no_compress_matches_find() {
        let mut uf: UnionFind<()> = UnionFind::new();
        let ids: Vec<usize> = (0..16).map(|_| uf.make_set(())).collect();
        for w in ids.chunks(2) {
            uf.union_with(w[0], w[1], |a, _| a);
        }
        uf.union_with(ids[0], ids[2], |a, _| a);
        uf.union_with(ids[4], ids[6], |a, _| a);
        uf.union_with(ids[0], ids[4], |a, _| a);
        for &i in &ids {
            assert_eq!(uf.find_no_compress(i), uf.find(i));
        }
    }

    #[test]
    fn long_chain_compresses() {
        // Build a long chain by always unioning the next element in; find on
        // the deepest element must terminate quickly and agree everywhere.
        let mut uf: UnionFind<u64> = UnionFind::new();
        let first = uf.make_set(0);
        let mut prev = first;
        for i in 1..10_000u64 {
            let n = uf.make_set(i);
            uf.union_with(prev, n, |a, _| a);
            prev = n;
        }
        let rep = uf.find(prev);
        assert_eq!(uf.find(first), rep);
        assert_eq!(uf.set_count(), 1);
    }

    /// Reference (slow) model: sets as Vec<Vec<usize>>.
    #[derive(Default)]
    struct Model {
        sets: Vec<Vec<usize>>,
        n: usize,
    }

    impl Model {
        fn make_set(&mut self) -> usize {
            let k = self.n;
            self.sets.push(vec![k]);
            self.n += 1;
            k
        }
        fn set_of(&self, x: usize) -> usize {
            self.sets.iter().position(|s| s.contains(&x)).unwrap()
        }
        fn union(&mut self, a: usize, b: usize) {
            let sa = self.set_of(a);
            let sb = self.set_of(b);
            if sa != sb {
                let moved = self.sets[sb].clone();
                self.sets[sa].extend(moved);
                self.sets.remove(sb);
            }
        }
        fn same(&self, a: usize, b: usize) -> bool {
            self.set_of(a) == self.set_of(b)
        }
    }

    /// Union-find agrees with a naive model on arbitrary operation
    /// sequences: same-set relation and set count match after each op.
    #[test]
    fn matches_naive_model() {
        let ops_strategy = strategies::vec_of(
            strategies::tuple2(
                strategies::usize_range(0..64),
                strategies::usize_range(0..64),
            ),
            1,
            200,
        );
        propcheck::check(&Config::default(), &ops_strategy, |ops| {
            let mut uf: UnionFind<()> = UnionFind::new();
            let mut model = Model::default();
            for _ in 0..64 {
                uf.make_set(());
                model.make_set();
            }
            for (a, b) in ops {
                uf.union_with(a, b, |x, _| x);
                model.union(a, b);
                assert_eq!(uf.set_count(), model.sets.len());
                assert!(uf.same_set(a, b));
            }
            for a in 0..64 {
                for b in 0..64 {
                    assert_eq!(uf.same_set(a, b), model.same(a, b));
                }
            }
        });
    }
}
