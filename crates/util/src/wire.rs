//! Tiny length-delimited wire codec for checkpoint state blobs.
//!
//! The fault-tolerant pipeline snapshots analysis state at chunk
//! boundaries (DESIGN S38). Those snapshots must round-trip exactly,
//! reject corruption with a structured error instead of a panic, and use
//! no external crates — the same zero-dependency discipline as the v1
//! trace codec. This module is the shared primitive layer: LEB128-style
//! varints, fixed-width floats (bit-exact, so resumed statistics match a
//! fresh run byte-for-byte), and a bounds-checked [`Cursor`] reader.
//!
//! The trace codec in `futrace-runtime` keeps its own private varint
//! helpers; this module exists so *state* serializers in `core`,
//! `baselines`, and `offline` don't each reinvent them.

use std::fmt;

pub mod proto;

/// Decoding error: the blob ended early or a field was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the field completed. Payload is a label for
    /// the field being read.
    Truncated(&'static str),
    /// A field decoded to a structurally impossible value. Payload is a
    /// label describing the violated expectation.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated while reading {what}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `v` as an LEB128 varint (7 bits per byte, MSB = continuation).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a `u32` as little-endian fixed width (used for CRCs, where a
/// fixed layout keeps corruption checks simple).
pub fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` by its IEEE-754 bit pattern (exact round-trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Bounds-checked reader over a byte slice; every accessor returns a
/// [`WireError`] instead of panicking on truncated or malformed input.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset from the start of the blob.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one varint; `what` labels the field in errors.
    pub fn varint(&mut self, what: &'static str) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or(WireError::Truncated(what))?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(WireError::Malformed(what));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Malformed(what));
            }
        }
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn u32_le(&mut self, what: &'static str) -> Result<u32, WireError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        let bytes = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap())))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.varint(what)?;
        if len > self.remaining() as u64 {
            return Err(WireError::Truncated(what));
        }
        self.take(len as usize, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, WireError> {
        let bytes = self.bytes(what)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::Malformed(what))
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated(what));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint("v").unwrap(), v);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn truncated_varint_is_error_not_panic() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        for cut in 0..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            assert_eq!(c.varint("v"), Err(WireError::Truncated("v")));
        }
    }

    #[test]
    fn overlong_varint_is_malformed() {
        // Eleven continuation bytes encode more than 64 bits.
        let buf = [0xFFu8; 11];
        let mut c = Cursor::new(&buf);
        assert_eq!(c.varint("v"), Err(WireError::Malformed("v")));
    }

    #[test]
    fn mixed_fields_roundtrip() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 42);
        put_u32_le(&mut buf, 0xDEAD_BEEF);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::INFINITY);
        put_str(&mut buf, "loc[3]");
        put_bytes(&mut buf, &[1, 2, 3]);

        let mut c = Cursor::new(&buf);
        assert_eq!(c.varint("a").unwrap(), 42);
        assert_eq!(c.u32_le("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.f64("c").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.f64("d").unwrap(), f64::INFINITY);
        assert_eq!(c.str("e").unwrap(), "loc[3]");
        assert_eq!(c.bytes("f").unwrap(), &[1, 2, 3]);
        assert!(c.is_empty());
    }

    #[test]
    fn bytes_length_beyond_input_is_truncated() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1000);
        buf.extend_from_slice(&[0; 8]);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.bytes("blob"), Err(WireError::Truncated("blob")));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.str("name"), Err(WireError::Malformed("name")));
    }
}
