//! The framed session wire protocol spoken by `tracetool serve`.
//!
//! One analysis session is a lock-step request/response conversation:
//! the client opens a session, streams trace chunks one frame at a time,
//! and finishes (or suspends). The server answers every request with
//! exactly one response, which gives backpressure for free — a client
//! cannot have more than one frame in flight, so server-side memory per
//! connection is one frame plus the session's own state.
//!
//! ```text
//! client                          server
//! ------                          ------
//! Open{config, trace_name}   →
//!                            ←    Hello{session, resumed_chunks}
//! Chunk{seq, payload}        →
//!                            ←    VerdictDelta{chunks, events, races}
//! ...                             ...
//! Finish                     →
//!                            ←    Final{races, verdict}
//! ```
//!
//! `Suspend` asks the server to checkpoint the session to FCKP and
//! answers `Suspended`; `Shutdown` asks the daemon to drain (suspending
//! every open session) and exit. Any failure is answered with a
//! structured [`Message::Error`] frame — a damaged or torn client stream
//! degrades into an error, never a panic and never a misparse of later
//! frames.
//!
//! # Framing
//!
//! Every message travels as `[len u32 LE][crc32 u32 LE][payload]` where
//! `len` is the payload length, the CRC covers the payload, and the
//! payload is `[kind u8][body…]` encoded with the [`super`] primitives
//! (varints, length-prefixed strings). The CRC is the same table-driven
//! IEEE CRC-32 ([`crate::crc32`]) the framed trace format uses, so a
//! flipped bit anywhere in a frame is detected before the body is
//! decoded. `len` is bounded by [`MAX_FRAME_LEN`] so a hostile or
//! garbage length prefix cannot make the reader allocate unbounded
//! memory.

use super::{put_str, put_u32_le, put_varint, Cursor, WireError};
use crate::crc32::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length (16 MiB). Trace chunks default to
/// 64 KiB, so this is generous headroom; anything larger is treated as a
/// corrupt length prefix, not an allocation request.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Frame header length: payload length + CRC-32, both fixed-width LE.
pub const FRAME_HEADER_LEN: usize = 8;

/// Structured error category carried by [`Message::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request violated the protocol (bad frame, wrong sequence,
    /// unknown message in this state).
    Protocol,
    /// A chunk payload failed to decode as trace events.
    Trace,
    /// The analysis backend failed.
    Analysis,
    /// The server is draining and accepts no new work.
    Draining,
    /// Unexpected server-side failure (I/O on a checkpoint file, …).
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Trace => 2,
            ErrorCode::Analysis => 3,
            ErrorCode::Draining => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Trace,
            3 => ErrorCode::Analysis,
            4 => ErrorCode::Draining,
            5 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Trace => "trace",
            ErrorCode::Analysis => "analysis",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// One protocol message (request or response; see the module docs for
/// which side sends which).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client → server: open a session with this analysis configuration.
    Open {
        /// Detect-worker count for the sharded backend; 0 = serial.
        shards: u64,
        /// Supervised checkpoint interval in chunks; 0 = unsupervised.
        checkpoint_every: u64,
        /// Skip damaged chunks instead of failing the session.
        lenient: bool,
        /// Client-chosen session name; keys the server-side FCKP
        /// checkpoint a suspended session resumes from.
        trace_name: String,
    },
    /// Client → server: one trace chunk (v1-encoded event payload, the
    /// same bytes a framed `.ftrc` chunk carries).
    Chunk {
        /// 0-based chunk ordinal, for torn-stream diagnostics.
        seq: u64,
        /// The encoded events.
        payload: Vec<u8>,
    },
    /// Client → server: all chunks sent; run the backend and answer with
    /// [`Message::Final`].
    Finish,
    /// Client → server: checkpoint the session to FCKP and close.
    Suspend,
    /// Client → server: drain the whole daemon (suspend every open
    /// session) and exit.
    Shutdown,
    /// Server → client: the session is open.
    Hello {
        /// Server-assigned session ordinal.
        session: u64,
        /// Chunks already completed by a resumed checkpoint (0 for a
        /// fresh session). The client still streams the full trace; the
        /// backend skips the completed prefix.
        resumed_chunks: u64,
    },
    /// Server → client: incremental verdict after one chunk.
    VerdictDelta {
        /// Chunks consumed so far.
        chunks: u64,
        /// Events consumed so far.
        events: u64,
        /// Races detected so far.
        races: u64,
    },
    /// Server → client: the session's final verdict.
    Final {
        /// Total races detected.
        races: u64,
        /// The rendered verdict block, byte-identical to what one-shot
        /// `tracetool analyze` prints for the same trace.
        verdict: String,
    },
    /// Server → client: the session was checkpointed.
    Suspended {
        /// Chunks the checkpoint covers; resume replays the rest.
        chunks: u64,
    },
    /// Server → client: the request failed.
    Error {
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: the daemon is at its session or connection quota
    /// and sheds this `Open` instead of queueing it. The client should
    /// back off and retry; the hint is advisory, not a promise of a slot.
    Busy {
        /// Suggested minimum wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

const KIND_OPEN: u8 = 1;
const KIND_CHUNK: u8 = 2;
const KIND_FINISH: u8 = 3;
const KIND_SUSPEND: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_HELLO: u8 = 16;
const KIND_VERDICT_DELTA: u8 = 17;
const KIND_FINAL: u8 = 18;
const KIND_SUSPENDED: u8 = 19;
const KIND_ERROR: u8 = 20;
const KIND_BUSY: u8 = 21;

impl Message {
    /// Encodes the message payload (kind byte + body, no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Open {
                shards,
                checkpoint_every,
                lenient,
                trace_name,
            } => {
                buf.push(KIND_OPEN);
                put_varint(&mut buf, *shards);
                put_varint(&mut buf, *checkpoint_every);
                buf.push(u8::from(*lenient));
                put_str(&mut buf, trace_name);
            }
            Message::Chunk { seq, payload } => {
                buf.push(KIND_CHUNK);
                put_varint(&mut buf, *seq);
                put_varint(&mut buf, payload.len() as u64);
                buf.extend_from_slice(payload);
            }
            Message::Finish => buf.push(KIND_FINISH),
            Message::Suspend => buf.push(KIND_SUSPEND),
            Message::Shutdown => buf.push(KIND_SHUTDOWN),
            Message::Hello {
                session,
                resumed_chunks,
            } => {
                buf.push(KIND_HELLO);
                put_varint(&mut buf, *session);
                put_varint(&mut buf, *resumed_chunks);
            }
            Message::VerdictDelta {
                chunks,
                events,
                races,
            } => {
                buf.push(KIND_VERDICT_DELTA);
                put_varint(&mut buf, *chunks);
                put_varint(&mut buf, *events);
                put_varint(&mut buf, *races);
            }
            Message::Final { races, verdict } => {
                buf.push(KIND_FINAL);
                put_varint(&mut buf, *races);
                put_str(&mut buf, verdict);
            }
            Message::Suspended { chunks } => {
                buf.push(KIND_SUSPENDED);
                put_varint(&mut buf, *chunks);
            }
            Message::Error { code, message } => {
                buf.push(KIND_ERROR);
                buf.push(code.to_u8());
                put_str(&mut buf, message);
            }
            Message::Busy { retry_after_ms } => {
                buf.push(KIND_BUSY);
                put_varint(&mut buf, *retry_after_ms);
            }
        }
        buf
    }

    /// Decodes a message payload. Strict: unknown kinds, malformed
    /// fields, and trailing garbage are all [`WireError`]s, never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
        let (&kind, body) = payload
            .split_first()
            .ok_or(WireError::Truncated("message kind"))?;
        let mut c = Cursor::new(body);
        let msg = match kind {
            KIND_OPEN => {
                let shards = c.varint("shards")?;
                let checkpoint_every = c.varint("checkpoint_every")?;
                let lenient = match c.varint("lenient")? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("lenient")),
                };
                let trace_name = c.str("trace_name")?.to_string();
                Message::Open {
                    shards,
                    checkpoint_every,
                    lenient,
                    trace_name,
                }
            }
            KIND_CHUNK => {
                let seq = c.varint("seq")?;
                let payload = c.bytes("chunk payload")?.to_vec();
                Message::Chunk { seq, payload }
            }
            KIND_FINISH => Message::Finish,
            KIND_SUSPEND => Message::Suspend,
            KIND_SHUTDOWN => Message::Shutdown,
            KIND_HELLO => Message::Hello {
                session: c.varint("session")?,
                resumed_chunks: c.varint("resumed_chunks")?,
            },
            KIND_VERDICT_DELTA => Message::VerdictDelta {
                chunks: c.varint("chunks")?,
                events: c.varint("events")?,
                races: c.varint("races")?,
            },
            KIND_FINAL => Message::Final {
                races: c.varint("races")?,
                verdict: c.str("verdict")?.to_string(),
            },
            KIND_SUSPENDED => Message::Suspended {
                chunks: c.varint("chunks")?,
            },
            KIND_ERROR => {
                let code = u8::try_from(c.varint("error code")?)
                    .ok()
                    .and_then(ErrorCode::from_u8)
                    .ok_or(WireError::Malformed("error code"))?;
                Message::Error {
                    code,
                    message: c.str("error message")?.to_string(),
                }
            }
            KIND_BUSY => Message::Busy {
                retry_after_ms: c.varint("retry_after_ms")?,
            },
            _ => return Err(WireError::Malformed("unknown message kind")),
        };
        if !c.is_empty() {
            return Err(WireError::Malformed("trailing bytes after message"));
        }
        Ok(msg)
    }
}

/// Any way reading a frame can fail. Every variant is a structured error
/// the session layer turns into a [`Message::Error`] response (or a
/// clean disconnect); the decode path never panics.
#[derive(Debug)]
pub enum ProtoError {
    /// The stream ended mid-frame (torn write / killed peer).
    Truncated(&'static str),
    /// The frame was structurally invalid.
    Malformed(&'static str),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The payload failed its CRC.
    Crc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated(what) => write!(f, "stream truncated while reading {what}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::Crc { stored, computed } => write!(
                f,
                "frame crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated(w) => ProtoError::Truncated(w),
            WireError::Malformed(w) => ProtoError::Malformed(w),
        }
    }
}

/// Encodes one message as a complete frame (header + payload).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.encode_payload();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    put_u32_le(&mut out, payload.len() as u32);
    put_u32_le(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame from the front of `data`, returning the message and
/// how many bytes it consumed.
pub fn decode_frame(data: &[u8]) -> Result<(Message, usize), ProtoError> {
    if data.len() < FRAME_HEADER_LEN {
        return Err(ProtoError::Truncated("frame header"));
    }
    let len = u32::from_le_bytes(data[0..4].try_into().unwrap());
    let stored = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if len as usize > MAX_FRAME_LEN {
        return Err(ProtoError::TooLarge(len));
    }
    let total = FRAME_HEADER_LEN + len as usize;
    if data.len() < total {
        return Err(ProtoError::Truncated("frame payload"));
    }
    let payload = &data[FRAME_HEADER_LEN..total];
    let computed = crc32(payload);
    if computed != stored {
        return Err(ProtoError::Crc { stored, computed });
    }
    let msg = Message::decode_payload(payload)?;
    Ok((msg, total))
}

/// Writes one framed message to `w` (a single `write_all` + flush).
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Reads one framed message from `r`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// between messages); EOF anywhere *inside* a frame is
/// [`ProtoError::Truncated`]. The payload allocation is bounded by
/// [`MAX_FRAME_LEN`], checked before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Message>, ProtoError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(ProtoError::Truncated("frame header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let stored = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len as usize > MAX_FRAME_LEN {
        return Err(ProtoError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated("frame payload")
        } else {
            ProtoError::Io(e)
        }
    })?;
    let computed = crc32(&payload);
    if computed != stored {
        return Err(ProtoError::Crc { stored, computed });
    }
    Ok(Some(Message::decode_payload(&payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::{self, strategies, Config};

    /// One representative of every message kind, exercising both empty
    /// and non-trivial field values.
    fn specimens() -> Vec<Message> {
        vec![
            Message::Open {
                shards: 0,
                checkpoint_every: 0,
                lenient: false,
                trace_name: String::new(),
            },
            Message::Open {
                shards: 4,
                checkpoint_every: 8,
                lenient: true,
                trace_name: "fixtures/actor_racy.ftrc".into(),
            },
            Message::Chunk {
                seq: 0,
                payload: vec![],
            },
            Message::Chunk {
                seq: u64::MAX,
                payload: (0..=255u8).collect(),
            },
            Message::Finish,
            Message::Suspend,
            Message::Shutdown,
            Message::Hello {
                session: 7,
                resumed_chunks: 3,
            },
            Message::VerdictDelta {
                chunks: 12,
                events: 4096,
                races: 2,
            },
            Message::Final {
                races: 5,
                verdict: "\n5 determinacy race(s); first 5:\n  …".into(),
            },
            Message::Suspended { chunks: 9 },
            Message::Error {
                code: ErrorCode::Trace,
                message: "invalid trace: unknown tag".into(),
            },
            Message::Busy { retry_after_ms: 0 },
            Message::Busy {
                retry_after_ms: 250,
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips_byte_identically() {
        for msg in specimens() {
            let frame = encode_frame(&msg);
            let (decoded, used) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(decoded, msg);
            // Re-encoding the decoded message reproduces the exact bytes.
            assert_eq!(encode_frame(&decoded), frame);

            // The io path agrees with the slice path.
            let mut cursor = io::Cursor::new(frame.clone());
            assert_eq!(read_frame(&mut cursor).unwrap(), Some(msg));
            assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
        }
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        for msg in specimens() {
            let frame = encode_frame(&msg);
            for cut in 0..frame.len() {
                let err = decode_frame(&frame[..cut]).unwrap_err();
                assert!(
                    matches!(
                        err,
                        ProtoError::Truncated(_) | ProtoError::Crc { .. } | ProtoError::Malformed(_)
                    ),
                    "cut {cut}: {err}"
                );
                let mut cursor = io::Cursor::new(frame[..cut].to_vec());
                if cut == 0 {
                    assert!(read_frame(&mut cursor).unwrap().is_none());
                } else {
                    assert!(read_frame(&mut cursor).is_err());
                }
            }
        }
    }

    #[test]
    fn every_single_byte_mutation_is_rejected_or_reencodes_cleanly() {
        for msg in specimens() {
            let frame = encode_frame(&msg);
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] ^= 0x01;
                match decode_frame(&bad) {
                    // Flips in the length prefix usually truncate or
                    // overrun; flips in CRC or payload must be caught by
                    // the checksum; all are structured errors.
                    Err(_) => {}
                    Ok((decoded, used)) => {
                        // A flip that still decodes (e.g. grew the frame
                        // into trailing bytes that happen to validate)
                        // must at least be self-consistent.
                        assert_eq!(encode_frame(&decoded)[..], bad[..used]);
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_malformed() {
        assert_eq!(
            Message::decode_payload(&[99]),
            Err(WireError::Malformed("unknown message kind"))
        );
        assert_eq!(
            Message::decode_payload(&[]),
            Err(WireError::Truncated("message kind"))
        );
        let mut payload = Message::Finish.encode_payload();
        payload.push(0);
        assert_eq!(
            Message::decode_payload(&payload),
            Err(WireError::Malformed("trailing bytes after message"))
        );
        // A non-boolean lenient flag is malformed, not coerced.
        let mut open = Vec::new();
        open.push(super::KIND_OPEN);
        put_varint(&mut open, 0);
        put_varint(&mut open, 0);
        open.push(2);
        put_str(&mut open, "t");
        assert_eq!(
            Message::decode_payload(&open),
            Err(WireError::Malformed("lenient"))
        );
    }

    #[test]
    fn oversized_length_prefix_does_not_allocate() {
        let mut frame = Vec::new();
        put_u32_le(&mut frame, u32::MAX);
        put_u32_le(&mut frame, 0);
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtoError::TooLarge(u32::MAX))
        ));
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::TooLarge(u32::MAX))
        ));
    }

    #[test]
    fn crc_flip_is_reported_with_both_values() {
        let mut frame = encode_frame(&Message::Finish);
        frame[4] ^= 0xFF;
        match decode_frame(&frame) {
            Err(ProtoError::Crc { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected crc error, got {other:?}"),
        }
    }

    /// Propcheck: arbitrary mutations of arbitrary valid frames never
    /// panic, and whatever still decodes re-encodes byte-identically
    /// (mirrors the PR 2 trace-decoder robustness suite).
    #[test]
    fn prop_mutated_frames_never_panic() {
        let strat = strategies::tuple4(
            strategies::u8_range(0..14),     // which specimen
            strategies::u32_range(0..4096),  // mutation offset seed
            strategies::u8_range(0..255),    // xor mask (0 ⇒ truncate instead)
            strategies::u32_range(0..4096),  // truncation point seed
        );
        propcheck::check(&Config::named("util::wire::proto").cases(512), &strat, |(which, off, mask, cut)| {
            let specimens = specimens();
            let msg = &specimens[which as usize % specimens.len()];
            let mut frame = encode_frame(msg);
            if mask == 0 {
                frame.truncate(cut as usize % (frame.len() + 1));
            } else {
                let off = off as usize % frame.len();
                frame[off] ^= mask;
            }
            match decode_frame(&frame) {
                Err(_) => {}
                Ok((decoded, used)) => {
                    assert_eq!(encode_frame(&decoded)[..], frame[..used]);
                }
            }
            // The io reader agrees: structured error or success, no panic.
            let _ = read_frame(&mut io::Cursor::new(frame));
        });
    }

    /// Propcheck: pure byte soup never panics the frame or payload
    /// decoders.
    #[test]
    fn prop_random_bytes_never_panic() {
        let strat = strategies::vec_of(strategies::u8_range(0..255), 0, 128);
        propcheck::check(&Config::named("util::wire::proto").cases(512), &strat, |bytes| {
            let _ = decode_frame(&bytes);
            let _ = Message::decode_payload(&bytes);
            let _ = read_frame(&mut io::Cursor::new(bytes));
        });
    }
}
