//! A motivating application: a build-system scheduler on futures.
//!
//! Build steps are future tasks; artifacts are shared cells. A step
//! `get()`s the futures of the steps that produce its declared inputs —
//! the OpenMP-`depends`/dataflow pattern the paper's introduction
//! motivates. A **missing dependency declaration** is exactly a
//! determinacy race on the artifact, and one serial detector run finds it
//! regardless of scheduling luck — this is the "use case" framing of the
//! whole paper.
//!
//! ```text
//! cargo run --example build_system
//! ```

use futrace::prelude::*;
use futrace::runtime::TaskCtx;
use std::collections::HashMap;

/// A declarative build graph: each rule names its inputs and output.
struct Rule {
    name: &'static str,
    inputs: Vec<&'static str>,
    output: &'static str,
    /// "Work": the value written to the output artifact.
    cost: u64,
}

fn rules() -> Vec<Rule> {
    vec![
        Rule { name: "gen-config", inputs: vec![], output: "config.h", cost: 3 },
        Rule { name: "cc-lexer", inputs: vec!["config.h"], output: "lexer.o", cost: 10 },
        Rule { name: "cc-parser", inputs: vec!["config.h", "lexer.o"], output: "parser.o", cost: 20 },
        Rule { name: "cc-main", inputs: vec!["config.h"], output: "main.o", cost: 7 },
        Rule { name: "link", inputs: vec!["lexer.o", "parser.o", "main.o"], output: "app", cost: 5 },
    ]
}

/// Runs the build under any executor. `forget_dep` drops one declared
/// dependency (the bug this demo plants): `cc-parser` stops waiting for
/// `lexer.o`.
fn build<C: TaskCtx>(ctx: &mut C, forget_dep: bool) -> SharedArray<u64> {
    let rules = rules();
    // One artifact cell per distinct file.
    let mut files: Vec<&str> = rules.iter().map(|r| r.output).collect();
    files.sort_unstable();
    files.dedup();
    let artifacts = ctx.shared_array(files.len(), 0u64, "artifact");
    let slot: HashMap<&str, usize> = files.iter().enumerate().map(|(i, f)| (*f, i)).collect();

    let mut producers: HashMap<&str, C::Handle<()>> = HashMap::new();
    for rule in rules {
        let deps: Vec<C::Handle<()>> = rule
            .inputs
            .iter()
            .filter(|f| !(forget_dep && rule.name == "cc-parser" && **f == "lexer.o"))
            .map(|f| producers[f].clone())
            .collect();
        let arts = artifacts.clone();
        let in_slots: Vec<usize> = rule.inputs.iter().map(|f| slot[f]).collect();
        let out_slot = slot[rule.output];
        let cost = rule.cost;
        let fut = ctx.future(move |ctx| {
            for d in &deps {
                ctx.get(d); // wait for declared inputs
            }
            // "Compile": fold the inputs into the output artifact.
            let mut acc = cost;
            for &s in &in_slots {
                acc = acc.wrapping_mul(31).wrapping_add(arts.read(ctx, s));
            }
            arts.write(ctx, out_slot, acc);
        });
        producers.insert(rule.output, fut);
    }
    ctx.get(&producers["app"]);
    artifacts
}

fn main() {
    // --- Correct build graph: certified determinate. --------------------
    let outcome = Analyze::program(|ctx| {
        build(ctx, false);
    }).run().unwrap();
    let (report, stats) = (outcome.races, outcome.stats);
    println!("correct build graph:   {report}");
    println!(
        "  {} build tasks, {} cross-step joins ({} non-tree)",
        stats.tasks,
        stats.dtrg.gets,
        stats.nt_joins()
    );
    assert!(!report.has_races());

    // Race-free ⇒ any parallel schedule produces the same artifacts.
    let serial = {
        let mut mon = futrace::runtime::NullMonitor;
        futrace::runtime::run_serial(&mut mon, |ctx| build(ctx, false).snapshot())
    };
    let parallel = run_parallel(4, |ctx| build(ctx, false).snapshot()).unwrap();
    assert_eq!(serial, parallel);
    println!("  parallel build reproduces the serial artifacts bit-for-bit\n");

    // --- One forgotten dependency: caught in a single serial run. -------
    let report = Analyze::program(|ctx| {
        build(ctx, true);
    }).run().unwrap().races;
    println!("cc-parser forgets its lexer.o dependency:");
    println!("{report}");
    assert!(report.has_races());
    let first = report.first().unwrap();
    assert!(first.loc_name.starts_with("artifact"));
    println!("=> the missing edge shows up as a determinacy race on the artifact —");
    println!("   no flaky rebuilds needed to expose it.");
}
