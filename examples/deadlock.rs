//! Appendix A's deadlock scenario.
//!
//! ```text
//! future<T> a = null, b = null;
//! async { a = async<T> { b.get(); ...}; /*F1*/ }
//! async { b = async<T> { a.get(); ...}; /*F2*/ }
//! ```
//!
//! The two futures may wait on each other forever — but only because the
//! handle variables `a` and `b` are **racy**: each future task reads a
//! handle written by the *other* async task without synchronization.
//! Appendix A proves a program with async/finish/future constructs can
//! deadlock *only if* it has a data race on future handles, so race
//! freedom certifies deadlock freedom.
//!
//! This example shows both halves:
//!
//! 1. the serial depth-first detector flags the handle race (no parallel
//!    execution, no deadlock, no luck involved — one run decides);
//! 2. the parallel executor actually deadlocks on the cyclic waits and
//!    reports `DeadlockError` via stall detection.
//!
//! ```text
//! cargo run --example deadlock
//! ```

use futrace::prelude::*;
use futrace::runtime::DeadlockError;

fn main() {
    // --- Half 1: the detector catches the handle race, serially. --------
    //
    // The serial depth-first execution cannot itself deadlock (a future
    // always completes at its spawn point), but the detector analyzes ALL
    // schedules: the unsynchronized handle cell is reported racy. We model
    // `future<T> b` as a shared cell holding a task id; the second async
    // reads it while the first wrote it in parallel.
    println!("== serial race detection on the handle exchange ==");
    let report = Analyze::program(|ctx| {
        // Shared handle slots (0 = null).
        let slot_a = ctx.shared_var(0u32, "handle.a");
        let slot_b = ctx.shared_var(0u32, "handle.b");
        let (sa, sb) = (slot_a.clone(), slot_b.clone());
        ctx.async_task(move |ctx| {
            // a = async { b.get(); } — reads slot_b to obtain the handle.
            let sb2 = sb.clone();
            let sa2 = sa.clone();
            let fa = ctx.future(move |ctx| {
                let _b_handle = sb2.read(ctx); // RACY read of b's slot
            });
            let _ = fa;
            sa2.write(ctx, 1); // publish a's handle — RACY write
        });
        let (sa, sb) = (slot_a.clone(), slot_b.clone());
        ctx.async_task(move |ctx| {
            let sa2 = sa.clone();
            let sb2 = sb.clone();
            let fb = ctx.future(move |ctx| {
                let _a_handle = sa2.read(ctx); // RACY read of a's slot
            });
            let _ = fb;
            sb2.write(ctx, 2); // publish b's handle — RACY write
        });
    }).run().unwrap().races;
    println!("{report}");
    assert!(
        report.has_races(),
        "the handle exchange must be reported racy"
    );
    println!("=> deadlock risk detected statically-in-one-run: the handle cells race.\n");

    // --- Half 2: the parallel runtime actually deadlocks. ---------------
    println!("== parallel execution of the cyclic wait ==");
    use std::sync::mpsc;
    let (txa, rxa) = mpsc::channel();
    let (txb, rxb) = mpsc::channel();
    let result: Result<u64, DeadlockError> = run_parallel(3, move |ctx| {
        let fa = ctx.future(move |ctx| {
            let hb = rxb.recv().unwrap(); // receive b's handle
            ctx.get(&hb) // ... and wait on it: half of the cycle
        });
        txa.send(fa.clone()).unwrap();
        let fb = ctx.future(move |ctx| {
            let ha = rxa.recv().unwrap();
            ctx.get(&ha) // the other half of the cycle
        });
        txb.send(fb.clone()).unwrap();
        ctx.get(&fa)
    });
    match result {
        Err(e) => println!("runtime detected: {e}"),
        Ok(v) => unreachable!("the cyclic wait cannot produce a value, got {v}"),
    }
    println!("\nRace-free programs never reach this state (Appendix A, Lemma 2).");
}
