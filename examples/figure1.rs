//! The paper's Figure 1: three future tasks with multiple joins on T_A and
//! a transitive join dependence from T_B to the main task.
//!
//! ```text
//! // Main task
//! Stmt1;
//! future<T> A = async<T> { ... };                          // T_A
//! Stmt2;
//! future<T> B = async<T>{ Stmt3; A.get(); Stmt4; };        // T_B
//! Stmt5;
//! future<T> C = async<T>{ Stmt6; A.get(); Stmt7; B.get(); }; // T_C
//! Stmt8;
//! A.get();
//! Stmt9;
//! C.get();
//! Stmt10;
//! ```
//!
//! The example verifies, against the exact computation-graph oracle, the
//! claims made in §2: Stmt3/Stmt6/Stmt8 may execute in parallel with T_A;
//! Stmt4/Stmt7/Stmt9 can only execute after T_A completes; and although
//! the main task never performs B.get(), Stmt10 is ordered after T_B
//! (transitively through T_C).
//!
//! ```text
//! cargo run --example figure1
//! ```

use futrace::compgraph::oracle::Reachability;
use futrace::compgraph::GraphBuilder;
use futrace::prelude::*;
use futrace::runtime::TaskCtx;
use futrace_util::ids::StepId;

/// Markers: each `Stmt` reads its own location so we can find its step.
fn stmt<C: TaskCtx>(ctx: &mut C, markers: &SharedArray<u64>, k: usize) {
    let _ = markers.read(ctx, k);
}

fn main() {
    let mut builder = GraphBuilder::new();
    run_serial(&mut builder, |ctx| {
        let markers = ctx.shared_array(16, 0u64, "stmt");
        stmt(ctx, &markers, 1); // Stmt1
        let m = markers.clone();
        let a = ctx.future(move |ctx| {
            stmt(ctx, &m, 11); // T_A's body
        });
        stmt(ctx, &markers, 2); // Stmt2
        let (m, a2) = (markers.clone(), a.clone());
        let b = ctx.future(move |ctx| {
            stmt(ctx, &m, 3); // Stmt3
            ctx.get(&a2);
            stmt(ctx, &m, 4); // Stmt4
        });
        stmt(ctx, &markers, 5); // Stmt5
        let (m, a3, b2) = (markers.clone(), a.clone(), b.clone());
        let _c = ctx.future(move |ctx| {
            stmt(ctx, &m, 6); // Stmt6
            ctx.get(&a3);
            stmt(ctx, &m, 7); // Stmt7
            ctx.get(&b2);
        });
        stmt(ctx, &markers, 8); // Stmt8
        ctx.get(&a);
        stmt(ctx, &markers, 9); // Stmt9
        ctx.get(&_c);
        stmt(ctx, &markers, 10); // Stmt10
    });
    let graph = builder.into_graph();
    let reach = Reachability::build(&graph);

    // Locate each Stmt's step by its marker read (location id k within the
    // "stmt" allocation, which is the first allocation: base 0).
    let step_of = |k: u32| -> StepId {
        graph
            .accesses
            .iter()
            .find(|acc| acc.loc.0 == k)
            .expect("marker read")
            .step
    };
    let ta_last = graph.tasks[1].last_step;
    let tb_last = graph.tasks[2].last_step;

    println!("Figure 1 claims, checked against the transitive-closure oracle:");
    for k in [3u32, 6, 8] {
        let s = step_of(k);
        assert!(reach.parallel(s, ta_last), "Stmt{k} must be parallel with T_A");
        println!("  Stmt{k} ∥ T_A            ✓");
    }
    for k in [4u32, 7, 9] {
        let s = step_of(k);
        assert!(reach.reaches(ta_last, s), "Stmt{k} must follow T_A");
        println!("  T_A ≺ Stmt{k}            ✓");
    }
    // The transitive dependence: main never called B.get(), yet T_B ≺ Stmt10.
    let s10 = step_of(10);
    assert!(reach.reaches(tb_last, s10), "T_B must precede Stmt10");
    println!("  T_B ≺ Stmt10 (transitive through T_C)  ✓");

    // And one non-claim for contrast: Stmt8 does not follow T_B.
    assert!(!reach.reaches(tb_last, step_of(8)));
    println!("  T_B ⊀ Stmt8              ✓");

    println!("\nAll Figure 1 properties hold.");
}
