//! The paper's Figure 2/Figure 3 setting: a main task and four future
//! tasks whose computation graph mixes tree joins and non-tree joins, with
//! the dynamic task reachability graph (Table 1) inspected **mid-run** —
//! the on-the-fly state, before the implicit finish collapses everything
//! into the main task's set.
//!
//! The figure's source listing is not reproduced in the paper text, so
//! this example builds a program exhibiting every property the paper
//! states about it:
//!
//! * a `get()` by an **ancestor** produces a *tree join* (the awaited
//!   task's disjoint set merges into the ancestor's — Algorithm 4's
//!   then-branch);
//! * a `get()` by a **non-ancestor** produces a *non-tree join* (recorded
//!   in the getter's `nt` set — Algorithm 4's else-branch), and descendant
//!   tasks spawned afterwards point to the getter as their *lowest
//!   significant ancestor*;
//! * some step pairs are ordered only transitively, others not at all
//!   (the paper's `S2 ≺ S12` / `S2 ⊀ S10` style claims), verified here
//!   against the exact transitive-closure oracle.
//!
//! The full computation graph is also printed in Graphviz DOT, styled like
//! the paper's figures (boxes = tasks, circles = steps, dashed = joins,
//! red = non-tree joins).
//!
//! ```text
//! cargo run --example figure2 [--dot]
//! ```

use futrace::compgraph::oracle::Reachability;
use futrace::compgraph::{dot, GraphBuilder, JoinKind};
use futrace::detector::RaceDetector;
use futrace::prelude::*;
use futrace::runtime::monitor::Pair;
use futrace::runtime::TaskCtx;
use futrace_util::ids::TaskId;

fn main() {
    let print_dot = std::env::args().any(|a| a == "--dot");
    let (ta, tb, tc, td) = (TaskId(1), TaskId(2), TaskId(3), TaskId(4));

    // Drive the detector and the graph builder over the same execution.
    let mut mon = Pair(RaceDetector::new(), GraphBuilder::new());
    run_serial(&mut mon, |ctx| {
        let markers = ctx.shared_array(16, 0u64, "s");
        let m = markers.clone();
        // T_A (T1) spawns T_B (T2) and joins it: a tree join.
        let a = ctx.future(move |ctx| {
            let m2 = m.clone();
            let b = ctx.future(move |ctx| {
                let _ = m2.read(ctx, 2); // "S2" inside T_B
            });
            ctx.get(&b); // ancestor get => tree join, sets merge
            // Mid-run DTRG check: T_B merged into T_A's set.
            assert!(ctx.monitor_mut().0.dtrg_mut().same_set(ta, tb));
            let _ = m.read(ctx, 3);
        });
        // T_C (T3) joins T_A from the side: a non-tree join.
        let a2 = a.clone();
        let m = markers.clone();
        let c = ctx.future(move |ctx| {
            ctx.get(&a2); // sibling get => non-tree join
            {
                let dtrg = ctx.monitor_mut().0.dtrg_mut();
                assert!(!dtrg.same_set(tc, ta), "non-tree join: no merge");
                assert!(dtrg.set_data(tc).nt.contains(ta), "T_A ∈ P(T_C)");
            }
            let _ = m.read(ctx, 8);
            // T_D (T4) spawned under T_C after the non-tree join:
            // its lowest significant ancestor is T_C (Table 1's LSA rows).
            let m2 = m.clone();
            let d = ctx.future(move |ctx| {
                let _ = m2.read(ctx, 12); // "S12"
            });
            {
                let dtrg = ctx.monitor_mut().0.dtrg_mut();
                assert_eq!(dtrg.set_data(td).lsa, Some(tc), "LSA(T_D) = T_C");
                // And the DTRG answers reachability: T_B precedes T_D
                // through tree join + non-tree join + spawn.
                assert!(dtrg.precede(tb, td));
                // ...but T_D (still running) precedes nobody.
                assert!(!dtrg.precede(td, tc));
            }
            ctx.get(&d);
        });
        // An access parallel to everything above ("S10"):
        let _ = markers.read(ctx, 10);
        ctx.get(&c);
    });
    let Pair(det, builder) = mon;
    assert!(!det.has_races());
    println!("Mid-run DTRG checks passed (Table 1's sets, P(·), and LSA(·)).");

    // --- Step-level reachability (Figure 2 style) ---------------------
    let graph = builder.into_graph();
    let reach = Reachability::build(&graph);
    let step_of = |k: u32| {
        graph
            .accesses
            .iter()
            .find(|acc| acc.loc.0 == k)
            .expect("marker")
            .step
    };
    let (s2, s8, s10, s12) = (step_of(2), step_of(8), step_of(10), step_of(12));
    assert!(reach.reaches(s2, s12), "S2 ≺ S12 (via tree + non-tree joins)");
    assert!(reach.parallel(s2, s10), "S2 ⊀ S10 and S10 ⊀ S2");
    assert!(reach.reaches(s2, s8), "S2 ≺ S8");
    println!("\nReachability (cf. Figure 2):");
    println!("  S2 ≺ S12   ✓ (tree join into T_A, non-tree join into T_C, spawn of T_D)");
    println!("  S2 ∥ S10   ✓ (no path either way)");

    // Join-kind census: B→A and C's get of D and main's get of C and the
    // implicit finish joins are tree; only C's get of A is non-tree.
    let tree = graph
        .join_edges()
        .filter(|(_, k)| *k == JoinKind::Tree)
        .count();
    let non_tree = graph.non_tree_join_count();
    println!("\nJoin edges: {tree} tree, {non_tree} non-tree");
    assert_eq!(non_tree, 1);

    if print_dot {
        println!("\n// --- computation graph (Figure 2 style) ---");
        println!("{}", dot::to_dot(&graph, "figure2"));
        println!("\n// --- DTRG (Figure 3 / Table 1 style) ---");
        let mut det = det;
        println!("{}", futrace::detector::dot::to_dot(det.dtrg_mut(), "figure3_dtrg"));
    } else {
        println!("(re-run with --dot to print the Graphviz renderings of the");
        println!(" computation graph and the final DTRG)");
    }
}
