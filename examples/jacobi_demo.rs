//! Jacobi stencil demo: the `depends`-style future workload from Table 2,
//! run three ways — serial reference, instrumented (race detection +
//! statistics), and parallel — with results cross-checked.
//!
//! ```text
//! cargo run --release --example jacobi_demo
//! ```

use futrace::benchsuite::jacobi::{
    expected_nt_joins, expected_tasks, jacobi_run, jacobi_seq, JacobiParams,
};
use futrace::prelude::*;
use futrace_util::stats::Timer;

fn main() {
    let p = JacobiParams {
        n: 128,
        tile: 16,
        sweeps: 4,
        seed: 0xacab,
    };
    println!(
        "Jacobi {}×{} grid, {}×{} tiles, {} sweeps — {} tile tasks, {} non-tree joins expected",
        p.n,
        p.n,
        p.tile,
        p.tile,
        p.sweeps,
        expected_tasks(&p),
        expected_nt_joins(&p),
    );

    // Serial elision (the Seq column).
    let t = Timer::start();
    let reference = jacobi_seq(&p);
    println!("serial elision:      {:8.2} ms", t.elapsed_ms());

    // Instrumented serial run (the Racedet column) + verification.
    let t = Timer::start();
    let outcome = Analyze::program(|ctx| {
        let out = jacobi_run(ctx, &p, false);
        let got = out.snapshot();
        assert!(got
            .iter()
            .zip(&reference)
            .all(|(a, b)| (a - b).abs() < 1e-12));
    }).run().unwrap();
    let (report, stats) = (outcome.races, outcome.stats);
    println!("instrumented serial: {:8.2} ms", t.elapsed_ms());
    assert!(!report.has_races());
    println!("\n-- detector statistics --\n{stats}\n");
    assert_eq!(stats.tasks, expected_tasks(&p));
    assert_eq!(stats.nt_joins(), expected_nt_joins(&p));

    // Parallel run: race-free, so it must equal the serial elision.
    let t = Timer::start();
    let got = run_parallel(
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        |ctx| jacobi_run(ctx, &p, false).snapshot(),
    )
    .expect("race-free => deadlock-free");
    println!("parallel run:        {:8.2} ms", t.elapsed_ms());
    assert!(got
        .iter()
        .zip(&reference)
        .all(|(a, b)| (a - b).abs() < 1e-12));
    println!("\nAll three executions agree (determinism property).");
}
