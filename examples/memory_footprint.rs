//! Theorem 1's space bound, measured: the DTRG detector's footprint is
//! `O(a + f + n + v·(f+1))`, while a vector-clock detector's clocks grow
//! with the task count — the paper's §1 argument made concrete.
//!
//! ```text
//! cargo run --release --example memory_footprint
//! ```

use futrace::baselines::{run_baseline, BaselineDetector, VectorClockDetector};
use futrace::detector::RaceDetector;
use futrace::prelude::*;
use futrace::runtime::TaskCtx;

/// `n` future tasks all reading one location, then joined by the parent —
/// the worst case for reader storage (`v·(f+1)`) and for clock width.
fn fan<C: TaskCtx>(ctx: &mut C, n: usize) {
    let x = ctx.shared_var(1u64, "x");
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let xr = x.clone();
            ctx.future(move |ctx| xr.read(ctx))
        })
        .collect();
    for h in &handles {
        ctx.get(h);
    }
    x.write(ctx, 2);
}

fn main() {
    println!("{:>8} | {:>40} | {:>22}", "futures", "DTRG footprint", "vector-clock");
    println!("{:->8}-+-{:->40}-+-{:->22}", "", "", "");
    for n in [64usize, 256, 1024, 4096] {
        let mut det = RaceDetector::new();
        run_serial(&mut det, |ctx| fan(ctx, n));
        assert!(!det.has_races());
        let fp = det.memory_footprint();

        let mut vc = VectorClockDetector::new();
        run_baseline(&mut vc, |ctx| fan(ctx, n));
        assert!(!vc.has_races());

        println!(
            "{:>8} | tasks {:>5}, nt {:>3}, cells {:>2}, readers {:>5} | width {:>5}, entries {:>9}",
            n,
            fp.dtrg_tasks,
            fp.stored_nt_edges,
            fp.shadow_cells,
            fp.stored_readers,
            vc.peak_clock_width,
            vc.total_clock_entries,
        );
    }
    println!(
        "\nThe DTRG side grows linearly in tasks with constant-size labels; the\n\
         vector-clock side allocates Θ(tasks) clock entries *per task*\n\
         (total_clock_entries grows quadratically) — the reason §1 rules\n\
         vector clocks out for dynamic task parallelism."
    );
}
