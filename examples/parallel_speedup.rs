//! Parallel speedup demo: the point of certifying race freedom is that
//! the parallel execution is then trustworthy. Runs Strassen and Jacobi
//! on 1..=N threads and reports wall-clock times; every run's result is
//! checked against the serial elision.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use futrace::benchsuite::jacobi::{jacobi_run, jacobi_seq, JacobiParams};
use futrace::benchsuite::strassen::{classical_seq, inputs, strassen_run, StrassenParams};
use futrace::prelude::*;
use futrace_util::stats::Timer;

fn main() {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);

    // --- Strassen ------------------------------------------------------
    let sp = StrassenParams {
        n: 256,
        cutoff: 32,
        seed: 0x57a5,
    };
    let (a, b) = inputs(&sp);
    let t = Timer::start();
    let want = classical_seq(&a, &b, sp.n);
    let seq_ms = t.elapsed_ms();
    println!("Strassen {0}×{0} (cutoff {1}):", sp.n, sp.cutoff);
    println!("  classical serial         {seq_ms:8.1} ms");
    for threads in [1, 2, max_threads] {
        let t = Timer::start();
        let got = run_parallel(threads, |ctx| strassen_run(ctx, &sp).snapshot())
            .expect("race-free => deadlock-free");
        let ms = t.elapsed_ms();
        let ok = got.iter().zip(&want).all(|(x, y)| (x - y).abs() < 1e-6);
        assert!(ok, "parallel result must match");
        println!("  futures on {threads:2} thread(s) {ms:8.1} ms   (result ✓)");
    }

    // --- Jacobi ----------------------------------------------------------
    let jp = JacobiParams {
        n: 512,
        tile: 64,
        sweeps: 6,
        seed: 0xacab,
    };
    let t = Timer::start();
    let want = jacobi_seq(&jp);
    let seq_ms = t.elapsed_ms();
    println!("\nJacobi {0}×{0}, {1} sweeps:", jp.n, jp.sweeps);
    println!("  serial elision           {seq_ms:8.1} ms");
    for threads in [1, 2, max_threads] {
        let t = Timer::start();
        let got = run_parallel(threads, |ctx| jacobi_run(ctx, &jp, false).snapshot())
            .expect("race-free => deadlock-free");
        let ms = t.elapsed_ms();
        let ok = got.iter().zip(&want).all(|(x, y)| (x - y).abs() < 1e-12);
        assert!(ok, "parallel result must match");
        println!("  futures on {threads:2} thread(s) {ms:8.1} ms   (result ✓)");
    }
    println!("\n(Exact speedups vary; the demonstrated property is that every");
    println!(" schedule of the race-free program computes the elision's answer.)");
}
