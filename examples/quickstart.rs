//! Quickstart: find a determinacy race in a future-parallel program, fix
//! it, and certify the fixed program determinate.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use futrace::prelude::*;

fn main() {
    // --- A racy program ----------------------------------------------------
    // A future task writes `total`; the main task reads it without joining
    // the future first. Depending on scheduling, the read could see either
    // value: a determinacy race.
    println!("== racy version ==");
    let report = Analyze::program(|ctx| {
        let total = ctx.shared_var(0i64, "total");
        let t = total.clone();
        let _sum = ctx.future(move |ctx| {
            let s: i64 = (1..=100).sum();
            t.write(ctx, s);
        });
        // BUG: no ctx.get(&_sum) here.
        let v = total.read(ctx);
        println!("main observed total = {v}");
    }).run().unwrap().races;
    println!("{report}");
    assert!(report.has_races());

    // --- The fixed program -------------------------------------------------
    // One `get()` establishes the happens-before edge; the detector proves
    // the program race-free, which (per the paper's determinism property)
    // certifies it functionally AND structurally deterministic for this
    // input, and deadlock-free.
    println!("== fixed version ==");
    let outcome = Analyze::program(|ctx| {
        let total = ctx.shared_var(0i64, "total");
        let t = total.clone();
        let sum = ctx.future(move |ctx| {
            let s: i64 = (1..=100).sum();
            t.write(ctx, s);
        });
        ctx.get(&sum); // the fix
        let v = total.read(ctx);
        assert_eq!(v, 5050);
        println!("main observed total = {v}");
    }).run().unwrap();
    let (report, stats) = (outcome.races, outcome.stats);
    println!("{report}");
    println!("-- run statistics --\n{stats}");
    assert!(!report.has_races());

    // Race-free means the parallel executor must compute the same answer
    // under every schedule — demonstrate on 8 threads.
    let v = run_parallel(8, |ctx| {
        let total = ctx.shared_var(0i64, "total");
        let t = total.clone();
        let sum = ctx.future(move |ctx| {
            let s: i64 = (1..=100).sum();
            t.write(ctx, s);
        });
        ctx.get(&sum);
        total.read(ctx)
    })
    .expect("race-free programs cannot deadlock");
    println!("parallel run computed total = {v}");
    assert_eq!(v, 5050);
}
