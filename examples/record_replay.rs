//! Offline (trace-based) race detection: record an execution's event
//! stream once, then run the detector over the serialized trace — the
//! verdict is identical to the online run, because the detector is a pure
//! function of the serial depth-first event stream.
//!
//! Both passes go through the analysis engine: `run_analysis_live` wraps
//! the detector in an [`Engine`] monitor for the online run, and
//! `run_analysis` drives the same detector from the decoded event stream
//! offline — no hand-written event loop on either side.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use futrace::benchsuite::smithwaterman::{sw_run, SwParams};
use futrace::detector::RaceDetector;
use futrace::runtime::engine::{run_analysis, run_analysis_live, source};
use futrace::runtime::{run_serial, trace, EventLog};
use futrace_util::stats::Timer;

fn main() {
    let p = SwParams {
        n: 200,
        tiles: 10,
        seed: 0xac97,
    };

    // --- Record: run the program once with only the cheap event logger.
    let t = Timer::start();
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        // Record the *buggy* variant so the offline pass has something
        // to find.
        let _ = sw_run(ctx, &p, true);
    });
    println!(
        "recorded {} events in {:.1} ms",
        log.events.len(),
        t.elapsed_ms()
    );

    // --- Serialize: compact varint encoding (plain Vec<u8>).
    let t = Timer::start();
    let blob = trace::encode(&log.events);
    println!(
        "encoded to {} bytes ({:.2} bytes/event) in {:.1} ms",
        blob.len(),
        blob.len() as f64 / log.events.len() as f64,
        t.elapsed_ms()
    );

    // --- Offline detection: stream the decoded trace through the engine.
    let offline = run_analysis(
        source::stream(trace::decode_iter(&blob)),
        RaceDetector::new(),
    )
    .expect("valid trace");
    println!("offline detection: {}", offline.counters);

    let report = &offline.report.report;
    assert!(
        report.has_races(),
        "the planted wavefront race must be found"
    );
    println!("\noffline verdict: {} race(s); first:", report.races.len());
    println!("  {}", report.races[0]);

    // --- Cross-check against the live run: same driver, live source.
    let live = run_analysis_live(
        |ctx| {
            let _ = sw_run(ctx, &p, true);
        },
        RaceDetector::new(),
    );
    assert_eq!(
        live.report.report.races, report.races,
        "offline == online, exactly"
    );
    println!("\nonline run agrees exactly (same reports, same order).");
}
