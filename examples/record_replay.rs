//! Offline (trace-based) race detection: record an execution's event
//! stream once, then run the detector over the serialized trace — the
//! verdict is identical to the online run, because the detector is a pure
//! function of the serial depth-first event stream.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use futrace::benchsuite::smithwaterman::{sw_run, SwParams};
use futrace::detector::RaceDetector;
use futrace::runtime::{replay, run_serial, trace, EventLog};
use futrace_util::stats::Timer;

fn main() {
    let p = SwParams {
        n: 200,
        tiles: 10,
        seed: 0xac97,
    };

    // --- Record: run the program once with only the cheap event logger.
    let t = Timer::start();
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        // Record the *buggy* variant so the offline pass has something
        // to find.
        let _ = sw_run(ctx, &p, true);
    });
    println!(
        "recorded {} events in {:.1} ms",
        log.events.len(),
        t.elapsed_ms()
    );

    // --- Serialize: compact varint encoding (plain Vec<u8>).
    let t = Timer::start();
    let blob = trace::encode(&log.events);
    println!(
        "encoded to {} bytes ({:.2} bytes/event) in {:.1} ms",
        blob.len(),
        blob.len() as f64 / log.events.len() as f64,
        t.elapsed_ms()
    );

    // --- Offline detection: decode and replay into a fresh detector.
    let t = Timer::start();
    let events = trace::decode(&blob).expect("valid trace");
    let mut det = RaceDetector::new();
    replay(&events, &mut det);
    println!("offline detection in {:.1} ms", t.elapsed_ms());

    assert!(det.has_races(), "the planted wavefront race must be found");
    println!("\noffline verdict: {} race(s); first:", det.races().len());
    println!("  {}", det.races()[0]);

    // --- Cross-check against the live run.
    let mut live = RaceDetector::new();
    run_serial(&mut live, |ctx| {
        let _ = sw_run(ctx, &p, true);
    });
    assert_eq!(live.races(), det.races(), "offline == online, exactly");
    println!("\nonline run agrees exactly (same reports, same order).");
}
