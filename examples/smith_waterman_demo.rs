//! Smith-Waterman demo: the wavefront alignment workload with the paper's
//! worst race-detection slowdown, plus what happens when a dependence is
//! forgotten (the detector pinpoints the race).
//!
//! ```text
//! cargo run --release --example smith_waterman_demo
//! ```

use futrace::benchsuite::smithwaterman::{
    expected_nt_joins, expected_tasks, max_score, sw_run, sw_seq_score, SwParams,
};
use futrace::prelude::*;
use futrace_util::stats::Timer;

fn main() {
    let p = SwParams {
        n: 400,
        tiles: 10,
        seed: 0xac97,
    };
    println!(
        "Smith-Waterman: {}×{} alignment matrix, {}×{} tile wavefront",
        p.n, p.n, p.tiles, p.tiles
    );
    println!(
        "expected structure: {} future tasks, {} non-tree joins\n",
        expected_tasks(&p),
        expected_nt_joins(&p)
    );

    let reference_score = sw_seq_score(&p);

    // Correct wavefront under the detector.
    let t = Timer::start();
    let outcome = Analyze::program(|ctx| {
        let h = sw_run(ctx, &p, false);
        assert_eq!(max_score(&h), reference_score);
    }).run().unwrap();
    let (report, stats) = (outcome.races, outcome.stats);
    println!("instrumented run:   {:8.2} ms — best local alignment score {reference_score}", t.elapsed_ms());
    assert!(!report.has_races());
    println!("race-free ✓   #AvgReaders = {:.3} (tile boundaries are watched by 2 parallel readers)\n",
        stats.avg_readers());

    // Broken wavefront: drop the `get()` on the top tile.
    let outcome = Analyze::program(|ctx| {
        let _ = sw_run(ctx, &p, true);
    }).run().unwrap();
    let report = outcome.races;
    println!("with the top-tile get() removed:");
    println!("{report}");
    assert!(report.has_races());

    // Parallel execution of the correct version.
    let score = run_parallel(4, |ctx| {
        let h = sw_run(ctx, &p, false);
        max_score(&h)
    })
    .expect("race-free => deadlock-free");
    assert_eq!(score, reference_score);
    println!("parallel wavefront computed the same score: {score} ✓");
}
