//! `Analyze` — the one front door for DTRG race detection.
//!
//! Before this module, running the detector meant picking from a zoo of
//! entry points: `detect_races` / `detect_races_with_stats` /
//! `detect_races_in_trace` for serial runs, a hand-assembled
//! `run_sharded_events` call for sharded replay, and a hand-built
//! `SupervisorPlan` for fault-tolerant runs — each returning a
//! differently-shaped result. The builder collapses all of it:
//!
//! ```
//! use futrace::Analyze;
//! use futrace::runtime::TaskCtx;
//!
//! let outcome = Analyze::program(|ctx| {
//!     let x = ctx.shared_var(0u64, "x");
//!     let x2 = x.clone();
//!     let f = ctx.future(move |ctx| x2.write(ctx, 1));
//!     ctx.get(&f);
//!     let _ = x.read(ctx);
//! })
//! .run()
//! .unwrap();
//! assert!(!outcome.has_races());
//! assert_eq!(outcome.stats.shared_mem(), 2);
//! ```
//!
//! Every run — program, trace file, trace blob, or event slice; serial,
//! sharded, or supervised — produces the same [`AnalysisOutcome`]: races,
//! detector statistics, measured footprint, engine counters (with the
//! hot-path cache hit/miss totals filled in), and the optional
//! sharding/supervision accounting. Sources and options compose:
//! `Analyze::trace(path).shards(4).checkpoint_every(8).run()` replays a
//! recorded trace through the supervised sharded pipeline.
//!
//! Since the session layer landed, the builder is a thin shell: it
//! resolves the source (running and recording a program, reading a trace
//! file) and then opens a [`crate::service::Session`], feeds it
//! everything, and finishes it — the exact machinery `tracetool serve`
//! drives chunk by chunk over the wire. One-shot and streamed analysis
//! therefore share every backend decision and produce identical
//! verdicts.
//!
//! A program source is recorded to an [`EventLog`] and replayed through
//! the engine's batched dispatch path. The serial executor is
//! deterministic, so the replayed verdict is identical to a live run's
//! (the equivalence the replay test suite pins down) — and it lets the
//! same program feed the serial, sharded, and supervised backends
//! unchanged.

use crate::detector::{DetectorConfig, OnlineDtrg};
use crate::offline::TraceError;
use crate::runtime::online::{run_online, OnlineOptions};
use crate::runtime::{run_serial, Event, EventLog, ParCtx, SerialCtx};
use crate::service::{Session, SessionConfig, SessionError};

pub use crate::service::AnalysisOutcome;

/// Why an [`Analyze::run`] failed. Program and event-slice sources are
/// infallible; the variants cover trace I/O, trace decoding, and
/// supervised-pipeline failures.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Reading the trace file failed.
    Io(String, std::io::Error),
    /// The trace blob failed to decode (strict mode, or unrecoverable
    /// structural damage in lenient mode).
    Trace(TraceError),
    /// The supervised pipeline could not complete the run.
    Supervise(String),
    /// The builder options are inconsistent (e.g. zero shards or a zero
    /// checkpoint interval) — reported before any work runs, never a
    /// panic deep in a backend.
    Config(String),
    /// The instrumented parallel execution deadlocked (a `get()` cycle,
    /// Appendix A). The detector saw only the prefix executed before the
    /// stall, so no verdict is returned.
    Deadlock(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io(path, e) => write!(f, "cannot read trace {path}: {e}"),
            AnalyzeError::Trace(e) => write!(f, "invalid trace: {e}"),
            AnalyzeError::Supervise(e) => write!(f, "supervised run failed: {e}"),
            AnalyzeError::Config(e) => write!(f, "invalid analysis options: {e}"),
            AnalyzeError::Deadlock(e) => write!(f, "parallel execution deadlocked: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TraceError> for AnalyzeError {
    fn from(e: TraceError) -> Self {
        AnalyzeError::Trace(e)
    }
}

impl From<SessionError> for AnalyzeError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Trace(e) => AnalyzeError::Trace(e),
            SessionError::Supervise(e) => AnalyzeError::Supervise(e),
            SessionError::Config(e) => AnalyzeError::Config(e),
            // One-shot runs never resume, so checkpoint failures here are
            // supervised-pipeline failures.
            SessionError::Checkpoint(e) => AnalyzeError::Supervise(e),
        }
    }
}

type Program<'a> = Box<dyn FnOnce(&mut SerialCtx<EventLog>) + 'a>;
type ParProgram<'a> = Box<dyn FnOnce(&mut ParCtx) + Send + 'a>;

enum Source<'a> {
    Program(Program<'a>),
    ParallelProgram { threads: usize, f: ParProgram<'a> },
    TracePath(String),
    TraceBytes(&'a [u8]),
    Events(&'a [Event]),
}

/// Builder for one DTRG analysis run. Construct with
/// [`Analyze::program`], [`Analyze::trace`], [`Analyze::trace_bytes`], or
/// [`Analyze::events`]; configure; then [`Analyze::run`].
pub struct Analyze<'a> {
    source: Source<'a>,
    config: DetectorConfig,
    shards: Option<usize>,
    checkpoint_every: Option<u64>,
    fault_seed: Option<u64>,
    lenient: bool,
    steal_seed: Option<u64>,
}

impl<'a> Analyze<'a> {
    fn new(source: Source<'a>) -> Self {
        Analyze {
            source,
            config: DetectorConfig::default(),
            shards: None,
            checkpoint_every: None,
            fault_seed: None,
            lenient: false,
            steal_seed: None,
        }
    }

    /// Analyzes a serial depth-first execution of `f` (the DSL program
    /// form the old `detect_races` took). The execution is recorded and
    /// replayed through the configured backend; the serial executor is
    /// deterministic, so the verdict is identical to a live run's.
    pub fn program<F>(f: F) -> Self
    where
        F: FnOnce(&mut SerialCtx<EventLog>) + 'a,
    {
        Analyze::new(Source::Program(Box::new(f)))
    }

    /// Analyzes an *instrumented parallel* execution of `f` on `threads`
    /// worker threads — detection happens online, while the program runs.
    /// Per-task access buffers are merged at scheduler sync points, a
    /// canonical walker reconstructs the serial-elision stream, and
    /// detector shards (fitted to the machine's spare cores unless
    /// [`Analyze::shards`] says otherwise) consume it concurrently with
    /// execution. The verdict is
    /// byte-identical to [`Analyze::program`] on the same program: same
    /// races, same indices, same statistics — held by the online
    /// equivalence propcheck. The outcome's `online` field carries the
    /// pipeline telemetry.
    ///
    /// Trace-replay options ([`Analyze::checkpoint_every`],
    /// [`Analyze::fault_plan`], [`Analyze::lenient`]) do not apply to a
    /// live parallel execution and are [`AnalyzeError::Config`] errors.
    pub fn program_parallel<F>(threads: usize, f: F) -> Self
    where
        F: FnOnce(&mut ParCtx) + Send + 'a,
    {
        Analyze::new(Source::ParallelProgram {
            threads,
            f: Box::new(f),
        })
    }

    /// Analyzes a recorded trace file (flat v1 or framed v2, sniffed by
    /// magic).
    pub fn trace(path: impl Into<String>) -> Self {
        Analyze::new(Source::TracePath(path.into()))
    }

    /// Analyzes an in-memory trace blob (flat v1 or framed v2).
    pub fn trace_bytes(blob: &'a [u8]) -> Self {
        Analyze::new(Source::TraceBytes(blob))
    }

    /// Analyzes an already-decoded event slice (an [`EventLog`]'s
    /// events).
    pub fn events(events: &'a [Event]) -> Self {
        Analyze::new(Source::Events(events))
    }

    /// Uses an explicit detector configuration (report caps, first-race
    /// mode, hot-path caching).
    pub fn detector(mut self, config: DetectorConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the sharded offline backend with `n` detect workers
    /// (verdict identical to the serial run's).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Runs under the fault-tolerant supervisor, barrier-snapshotting
    /// every `chunks` chunk boundaries so dead or stalled workers restart
    /// from the last snapshot.
    pub fn checkpoint_every(mut self, chunks: u64) -> Self {
        self.checkpoint_every = Some(chunks);
        self
    }

    /// Injects the deterministic fault plan expanded from `seed` (worker
    /// panics/stalls; see `FaultPlan::from_seed`) and runs under the
    /// supervisor, which must recover without changing the verdict.
    pub fn fault_plan(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Skips damaged chunks of a framed trace (counting them) instead of
    /// failing the run.
    pub fn lenient(mut self, lenient: bool) -> Self {
        self.lenient = lenient;
        self
    }

    /// Seeds randomized steal order for [`Analyze::program_parallel`]
    /// (schedule exploration: different seeds exercise different
    /// interleavings; the verdict is canonical regardless). Only
    /// meaningful for the parallel-program source.
    pub fn steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = Some(seed);
        self
    }

    /// Runs the configured analysis: open a session, feed it the whole
    /// source, finish it. (`tracetool serve` drives the same session
    /// chunk by chunk; the backend logic lives in one place.)
    pub fn run(self) -> Result<AnalysisOutcome, AnalyzeError> {
        let Analyze {
            source,
            config,
            shards,
            checkpoint_every,
            fault_seed,
            lenient,
            steal_seed,
        } = self;
        if let Source::ParallelProgram { threads, f } = source {
            return Self::run_parallel_source(
                threads,
                f,
                config,
                shards,
                checkpoint_every,
                fault_seed,
                lenient,
                steal_seed,
            );
        }
        if steal_seed.is_some() {
            return Err(AnalyzeError::Config(
                "steal_seed() applies only to program_parallel sources".into(),
            ));
        }
        let mut session = Session::open(SessionConfig {
            detector: config,
            shards,
            checkpoint_every,
            fault_seed,
            lenient,
        })?;
        match source {
            Source::Program(f) => {
                let mut log = EventLog::new();
                run_serial(&mut log, f);
                session.feed_events(log.events)?;
            }
            Source::TracePath(path) => {
                let data = std::fs::read(&path).map_err(|e| AnalyzeError::Io(path.clone(), e))?;
                session.feed_trace(data)?;
            }
            Source::TraceBytes(b) => session.feed_trace(b.to_vec())?,
            Source::Events(e) => session.feed_events(e.to_vec())?,
            Source::ParallelProgram { .. } => unreachable!("dispatched above"),
        }
        Ok(session.finish()?)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_parallel_source(
        threads: usize,
        f: ParProgram<'a>,
        config: DetectorConfig,
        shards: Option<usize>,
        checkpoint_every: Option<u64>,
        fault_seed: Option<u64>,
        lenient: bool,
        steal_seed: Option<u64>,
    ) -> Result<AnalysisOutcome, AnalyzeError> {
        if threads == 0 {
            return Err(AnalyzeError::Config(
                "program_parallel(0, ..): need at least one worker thread".into(),
            ));
        }
        if shards == Some(0) {
            return Err(AnalyzeError::Config(
                "shards(0): need at least one detect worker".into(),
            ));
        }
        if checkpoint_every.is_some() || fault_seed.is_some() {
            return Err(AnalyzeError::Config(
                "checkpoint_every()/fault_plan() apply to replayed traces, \
                 not to a live parallel execution"
                    .into(),
            ));
        }
        if lenient {
            return Err(AnalyzeError::Config(
                "lenient() applies to framed trace sources".into(),
            ));
        }
        let opts = OnlineOptions {
            threads,
            shards: shards.unwrap_or_else(|| OnlineOptions::auto(threads).shards),
            steal_seed,
        };
        let run = run_online(opts, OnlineDtrg::with_config(config), f);
        if let Err(e) = run.result {
            return Err(AnalyzeError::Deadlock(e.to_string()));
        }
        let mut engine = run.engine;
        // Same cache-counter enrichment the session layer applies: hits
        // from both cache layers, misses from the memo.
        engine.cache_hits = run.report.stats.dtrg.memo_hits + run.report.stats.dtrg.shadow_hits;
        engine.cache_misses = run.report.stats.dtrg.memo_misses;
        let mut outcome = AnalysisOutcome {
            races: run.report.report,
            stats: run.report.stats,
            footprint: run.report.footprint,
            engine,
            sharding: None,
            supervision: None,
            online: None,
        };
        outcome.online = Some(run.stats);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TaskCtx;

    fn racy(ctx: &mut SerialCtx<EventLog>) {
        let x = ctx.shared_var(0u64, "x");
        let x2 = x.clone();
        let _f = ctx.future(move |ctx| x2.write(ctx, 1));
        let _ = x.read(ctx); // no get(): a race
    }

    #[test]
    fn program_parallel_matches_serial_program() {
        fn prog<C: TaskCtx>(ctx: &mut C) {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let y = ctx.shared_var(0u64, "y");
            let y2 = y.clone();
            let _unjoined = ctx.future(move |ctx| y2.write(ctx, 2));
            let _ = y.read(ctx); // races with the unjoined writer
        }

        let serial = Analyze::program(|ctx| prog(ctx)).run().unwrap();
        assert!(serial.has_races());
        for threads in [1usize, 2, 4] {
            let par = Analyze::program_parallel(threads, |ctx| prog(ctx))
                .run()
                .unwrap();
            assert_eq!(par.races.races, serial.races.races);
            assert_eq!(par.races.total_detected, serial.races.total_detected);
            assert_eq!(par.stats.shared_mem(), serial.stats.shared_mem());
            assert_eq!(par.engine.checks(), serial.engine.checks());
            let online = par.online.expect("parallel runs carry telemetry");
            assert_eq!(online.threads, threads);
            assert_eq!(online.shards, OnlineOptions::auto(threads).shards);
            assert!(online.publishes > 0);
            assert!(!online.truncated);
        }
    }

    #[test]
    fn program_parallel_rejects_trace_only_options() {
        let noop = |_: &mut crate::runtime::ParCtx| {};
        let err = Analyze::program_parallel(2, noop)
            .checkpoint_every(4)
            .run()
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");

        let err = Analyze::program_parallel(2, noop)
            .fault_plan(7)
            .run()
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");

        let err = Analyze::program_parallel(2, noop)
            .lenient(true)
            .run()
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");

        let err = Analyze::program_parallel(0, noop).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");

        let err = Analyze::program(racy).steal_seed(3).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");
    }

    #[test]
    fn program_parallel_deadlock_is_an_error() {
        let err = Analyze::program_parallel(2, |ctx| {
            let (tx, rx) = std::sync::mpsc::channel::<crate::runtime::ParHandle<u64>>();
            let a = ctx.future(move |ctx| {
                let h = rx.recv().unwrap();
                ctx.get(&h) // waits on itself: Appendix A's cycle
            });
            tx.send(a.clone()).unwrap();
            ctx.get(&a);
        })
        .run()
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::Deadlock(_)), "{err}");
    }

    #[test]
    fn zero_shards_and_zero_checkpoint_are_config_errors() {
        let err = Analyze::program(racy).shards(0).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");
        assert!(err.to_string().contains("shards(0)"));

        let err = Analyze::program(racy).checkpoint_every(0).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");
        assert!(err.to_string().contains("checkpoint_every(0)"));
    }

    #[test]
    fn program_run_reports_race_and_counters() {
        let out = Analyze::program(racy).run().unwrap();
        assert!(out.has_races());
        assert_eq!(out.stats.shared_mem(), 2);
        assert_eq!(out.engine.checks(), 2);
        assert!(out.sharding.is_none());
        assert!(out.supervision.is_none());
    }

    #[test]
    fn builder_options_compose() {
        let out = Analyze::program(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        })
        .detector(DetectorConfig {
            first_race_only: true,
            ..DetectorConfig::default()
        })
        .shards(2)
        .run()
        .unwrap();
        assert!(!out.has_races());
        let sharding = out.sharding.expect("sharded backend ran");
        assert_eq!(sharding.shards, 2);
    }

    #[test]
    fn trace_bytes_and_events_agree_with_program() {
        let mut log = EventLog::new();
        run_serial(&mut log, racy);
        let blob = crate::runtime::trace::encode(&log.events);

        let from_program = Analyze::program(racy).run().unwrap();
        let from_events = Analyze::events(&log.events).run().unwrap();
        let from_blob = Analyze::trace_bytes(&blob).run().unwrap();
        for out in [&from_events, &from_blob] {
            assert_eq!(out.races.races, from_program.races.races);
            assert_eq!(out.races.total_detected, from_program.races.total_detected);
            assert_eq!(out.stats.shared_mem(), from_program.stats.shared_mem());
        }
    }

    #[test]
    fn supervised_run_completes_with_accounting() {
        let out = Analyze::program(racy)
            .shards(2)
            .checkpoint_every(2)
            .run()
            .unwrap();
        assert!(out.has_races());
        let supervision = out.supervision.expect("supervised backend ran");
        assert_eq!(supervision.resumed_from_checkpoint, 0);
        assert!(out.sharding.is_some());
    }

    #[test]
    fn missing_trace_file_is_an_io_error() {
        let err = Analyze::trace("/nonexistent/definitely-missing.ftrc")
            .run()
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Io(..)), "{err}");
        assert!(err.to_string().contains("definitely-missing"));
    }

    #[test]
    fn garbage_bytes_are_a_trace_error() {
        let err = Analyze::trace_bytes(&[0xFF, 0xFE, 0xFD]).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Trace(_)), "{err}");
    }

    #[test]
    fn cache_counters_reach_the_engine_display() {
        let out = Analyze::program(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            for _ in 0..32 {
                let _ = x.read(ctx); // repeated clean reads: fast-path hits
            }
        })
        .run()
        .unwrap();
        assert!(!out.has_races());
        assert!(out.stats.dtrg.shadow_hits > 0);
        assert_eq!(
            out.engine.cache_hits,
            out.stats.dtrg.memo_hits + out.stats.dtrg.shadow_hits
        );
        assert!(out.engine.to_string().contains("cache:"), "{}", out.engine);
    }
}
