//! `Analyze` — the one front door for DTRG race detection.
//!
//! Before this module, running the detector meant picking from a zoo of
//! entry points: `detect_races` / `detect_races_with_stats` /
//! `detect_races_in_trace` for serial runs, a hand-assembled
//! [`run_sharded_events`] call for sharded replay, and a hand-built
//! [`SupervisorPlan`] for fault-tolerant runs — each returning a
//! differently-shaped result (`RaceReport`, `(RaceReport, DetectorStats)`,
//! `DtrgReport`, `ShardedRun`, `SupervisedOutcome`). The builder collapses
//! all of it:
//!
//! ```
//! use futrace::Analyze;
//! use futrace::runtime::TaskCtx;
//!
//! let outcome = Analyze::program(|ctx| {
//!     let x = ctx.shared_var(0u64, "x");
//!     let x2 = x.clone();
//!     let f = ctx.future(move |ctx| x2.write(ctx, 1));
//!     ctx.get(&f);
//!     let _ = x.read(ctx);
//! })
//! .run()
//! .unwrap();
//! assert!(!outcome.has_races());
//! assert_eq!(outcome.stats.shared_mem(), 2);
//! ```
//!
//! Every run — program, trace file, trace blob, or event slice; serial,
//! sharded, or supervised — produces the same [`AnalysisOutcome`]: races,
//! detector statistics, measured footprint, engine counters (with the
//! hot-path cache hit/miss totals filled in), and the optional
//! sharding/supervision accounting. Sources and options compose:
//! `Analyze::trace(path).shards(4).checkpoint_every(8).run()` replays a
//! recorded trace through the supervised sharded pipeline.
//!
//! A program source is recorded to an [`EventLog`] and replayed through
//! the engine's batched dispatch path. The serial executor is
//! deterministic, so the replayed verdict is identical to a live run's
//! (the equivalence the replay test suite pins down) — and it lets the
//! same program feed the serial, sharded, and supervised backends
//! unchanged.

use crate::detector::{DetectorConfig, DetectorStats, MemoryFootprint, RaceDetector, RaceReport};
use crate::offline::{
    run_sharded_events, run_supervised, trace_chunks, trace_events, ShardPlan, ShardStats,
    SupervisedOutcome, SuperviseError, SupervisionReport, SupervisorPlan, SyntheticChunks,
    TraceError,
};
use crate::runtime::engine::{run_analysis, source, EngineCounters};
use crate::runtime::{run_serial, Event, EventLog, SerialCtx};
use crate::util::faultinject::FaultPlan;
use crate::util::stats::Timer;
use std::convert::Infallible;

/// Everything one analysis run produces, whatever the source and backend.
///
/// This is the merge of the old `DtrgReport` vs `RaceReport` +
/// `DetectorStats` duality: one type carrying the verdict, the run's
/// structural statistics, the measured space bound, the engine's
/// bookkeeping, and — when the sharded or supervised backend ran — its
/// pipeline accounting.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// Deduplicated, capped race report (the verdict).
    pub races: RaceReport,
    /// Structural statistics and DTRG cost counters (Table 2's columns,
    /// plus the memo and fast-path cache counters).
    pub stats: DetectorStats,
    /// Theorem 1's space bound, measured at the end of the run.
    pub footprint: MemoryFootprint,
    /// Engine counters: events consumed, checks performed, wall time,
    /// cache hit/miss totals, and any supervision suffix.
    pub engine: EngineCounters,
    /// Sharded-pipeline accounting, when `.shards(n)` ran the sharded or
    /// supervised backend.
    pub sharding: Option<ShardStats>,
    /// What the supervisor did, when the supervised backend ran.
    pub supervision: Option<SupervisionReport>,
}

impl AnalysisOutcome {
    /// True iff any race was detected.
    pub fn has_races(&self) -> bool {
        self.races.has_races()
    }

    fn from_dtrg(report: crate::detector::DtrgReport, mut engine: EngineCounters) -> Self {
        // Surface the analysis's hot-path cache counters next to the
        // driver's own counts: hits from both cache layers, misses from
        // the memo (the shadow fast path has no distinct miss event —
        // every slow-path check is one).
        engine.cache_hits = report.stats.dtrg.memo_hits + report.stats.dtrg.shadow_hits;
        engine.cache_misses = report.stats.dtrg.memo_misses;
        AnalysisOutcome {
            races: report.report,
            stats: report.stats,
            footprint: report.footprint,
            engine,
            sharding: None,
            supervision: None,
        }
    }
}

/// Why an [`Analyze::run`] failed. Program and event-slice sources are
/// infallible; the variants cover trace I/O, trace decoding, and
/// supervised-pipeline failures.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Reading the trace file failed.
    Io(String, std::io::Error),
    /// The trace blob failed to decode (strict mode, or unrecoverable
    /// structural damage in lenient mode).
    Trace(TraceError),
    /// The supervised pipeline could not complete the run.
    Supervise(String),
    /// The builder options are inconsistent (e.g. zero shards or a zero
    /// checkpoint interval) — reported before any work runs, never a
    /// panic deep in a backend.
    Config(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io(path, e) => write!(f, "cannot read trace {path}: {e}"),
            AnalyzeError::Trace(e) => write!(f, "invalid trace: {e}"),
            AnalyzeError::Supervise(e) => write!(f, "supervised run failed: {e}"),
            AnalyzeError::Config(e) => write!(f, "invalid analysis options: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TraceError> for AnalyzeError {
    fn from(e: TraceError) -> Self {
        AnalyzeError::Trace(e)
    }
}

type Program<'a> = Box<dyn FnOnce(&mut SerialCtx<EventLog>) + 'a>;

enum Source<'a> {
    Program(Program<'a>),
    TracePath(String),
    TraceBytes(&'a [u8]),
    Events(&'a [Event]),
}

/// Builder for one DTRG analysis run. Construct with
/// [`Analyze::program`], [`Analyze::trace`], [`Analyze::trace_bytes`], or
/// [`Analyze::events`]; configure; then [`Analyze::run`].
pub struct Analyze<'a> {
    source: Source<'a>,
    config: DetectorConfig,
    shards: Option<usize>,
    checkpoint_every: Option<u64>,
    fault_seed: Option<u64>,
    lenient: bool,
}

impl<'a> Analyze<'a> {
    fn new(source: Source<'a>) -> Self {
        Analyze {
            source,
            config: DetectorConfig::default(),
            shards: None,
            checkpoint_every: None,
            fault_seed: None,
            lenient: false,
        }
    }

    /// Analyzes a serial depth-first execution of `f` (the DSL program
    /// form the old `detect_races` took). The execution is recorded and
    /// replayed through the configured backend; the serial executor is
    /// deterministic, so the verdict is identical to a live run's.
    pub fn program<F>(f: F) -> Self
    where
        F: FnOnce(&mut SerialCtx<EventLog>) + 'a,
    {
        Analyze::new(Source::Program(Box::new(f)))
    }

    /// Analyzes a recorded trace file (flat v1 or framed v2, sniffed by
    /// magic).
    pub fn trace(path: impl Into<String>) -> Self {
        Analyze::new(Source::TracePath(path.into()))
    }

    /// Analyzes an in-memory trace blob (flat v1 or framed v2).
    pub fn trace_bytes(blob: &'a [u8]) -> Self {
        Analyze::new(Source::TraceBytes(blob))
    }

    /// Analyzes an already-decoded event slice (an [`EventLog`]'s
    /// events).
    pub fn events(events: &'a [Event]) -> Self {
        Analyze::new(Source::Events(events))
    }

    /// Uses an explicit detector configuration (report caps, first-race
    /// mode, hot-path caching).
    pub fn detector(mut self, config: DetectorConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the sharded offline backend with `n` detect workers
    /// (verdict identical to the serial run's).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Runs under the fault-tolerant supervisor, barrier-snapshotting
    /// every `chunks` chunk boundaries so dead or stalled workers restart
    /// from the last snapshot.
    pub fn checkpoint_every(mut self, chunks: u64) -> Self {
        self.checkpoint_every = Some(chunks);
        self
    }

    /// Injects the deterministic fault plan expanded from `seed` (worker
    /// panics/stalls; see [`FaultPlan::from_seed`]) and runs under the
    /// supervisor, which must recover without changing the verdict.
    pub fn fault_plan(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Skips damaged chunks of a framed trace (counting them) instead of
    /// failing the run.
    pub fn lenient(mut self, lenient: bool) -> Self {
        self.lenient = lenient;
        self
    }

    /// Runs the configured analysis.
    pub fn run(self) -> Result<AnalysisOutcome, AnalyzeError> {
        let Analyze {
            source,
            config,
            shards,
            checkpoint_every,
            fault_seed,
            lenient,
        } = self;
        if shards == Some(0) {
            return Err(AnalyzeError::Config(
                "shards(0): the sharded backend needs at least one detect worker".to_string(),
            ));
        }
        if checkpoint_every == Some(0) {
            return Err(AnalyzeError::Config(
                "checkpoint_every(0): the checkpoint interval must be at least one chunk"
                    .to_string(),
            ));
        }
        let supervised = checkpoint_every.is_some() || fault_seed.is_some();

        // Resolve the source into a trace blob or an owned event list.
        let (blob, events): (Option<Vec<u8>>, Option<Vec<Event>>) = match source {
            Source::Program(f) => {
                let mut log = EventLog::new();
                run_serial(&mut log, f);
                (None, Some(log.events))
            }
            Source::TracePath(path) => {
                let data = std::fs::read(&path).map_err(|e| AnalyzeError::Io(path.clone(), e))?;
                (Some(data), None)
            }
            Source::TraceBytes(b) => (Some(b.to_vec()), None),
            Source::Events(e) => (None, Some(e.to_vec())),
        };

        let timer = Timer::start();
        if supervised {
            let plan = {
                let mut plan = SupervisorPlan {
                    shard: ShardPlan::with_shards(shards.unwrap_or(ShardPlan::default().shards)),
                    ..SupervisorPlan::default()
                };
                plan.checkpoint_every_chunks = checkpoint_every;
                if let Some(seed) = fault_seed {
                    plan = plan.with_faults(&FaultPlan::from_seed(seed));
                }
                plan
            };
            let factory = || RaceDetector::with_config(config.clone());
            let out = match (&blob, &events) {
                (Some(data), _) => {
                    run_supervised(|| trace_events(data, lenient), factory, &plan, None)
                        .map_err(erase_supervise_error)?
                }
                (None, Some(events)) => run_supervised(
                    || {
                        SyntheticChunks::new(
                            events.iter().cloned().map(Ok as fn(_) -> Result<_, TraceError>),
                            SYNTHETIC_CHUNK_EVENTS,
                        )
                    },
                    factory,
                    &plan,
                    None,
                )
                .map_err(erase_supervise_error)?,
                (None, None) => unreachable!("source resolution always yields one"),
            };
            let SupervisedOutcome::Completed {
                report,
                stats,
                supervision,
            } = out
            else {
                unreachable!("no stop_after requested, the run must complete");
            };
            let engine = engine_from_shards(&stats, timer.elapsed_ms(), Some(&supervision));
            let mut outcome = AnalysisOutcome::from_dtrg(report, engine);
            outcome.sharding = Some(stats);
            outcome.supervision = Some(supervision);
            return Ok(outcome);
        }

        if let Some(n) = shards {
            let factory = || RaceDetector::with_config(config.clone());
            let plan = ShardPlan::with_shards(n);
            let run = match (&blob, &events) {
                (Some(data), _) => {
                    let mut it = trace_events(data, lenient);
                    let mut run = run_sharded_events(&mut it, &plan, factory)?;
                    run.stats.skipped_chunks = it.skipped_chunks();
                    run
                }
                (None, Some(events)) => {
                    let it = events.iter().cloned().map(Ok as fn(_) -> Result<_, Infallible>);
                    match run_sharded_events(it, &plan, factory) {
                        Ok(run) => run,
                        Err(never) => match never {},
                    }
                }
                (None, None) => unreachable!("source resolution always yields one"),
            };
            let engine = engine_from_shards(&run.stats, timer.elapsed_ms(), None);
            let mut outcome = AnalysisOutcome::from_dtrg(run.report, engine);
            outcome.sharding = Some(run.stats);
            return Ok(outcome);
        }

        // Plain serial replay: chunk-batched decode for trace blobs, the
        // batched in-memory path for event slices.
        let detector = RaceDetector::with_config(config);
        let out = match (&blob, &events) {
            (Some(data), _) => run_analysis(source::chunks(trace_chunks(data, lenient)), detector)?,
            (None, Some(events)) => match run_analysis(source::recorded(events), detector) {
                Ok(out) => out,
                Err(never) => match never {},
            },
            (None, None) => unreachable!("source resolution always yields one"),
        };
        Ok(AnalysisOutcome::from_dtrg(out.report, out.counters))
    }
}

/// Synthetic chunk granularity used when supervising an in-memory event
/// list (which has no framed boundaries of its own).
const SYNTHETIC_CHUNK_EVENTS: u64 = 4096;

fn erase_supervise_error(e: SuperviseError<TraceError>) -> AnalyzeError {
    match e {
        SuperviseError::Stream(e) => AnalyzeError::Trace(e),
        other => AnalyzeError::Supervise(other.to_string()),
    }
}

/// Builds engine counters from sharded-pipeline accounting, the exact
/// assembly `tracetool` used to do by hand.
fn engine_from_shards(
    stats: &ShardStats,
    wall_ms: f64,
    supervision: Option<&SupervisionReport>,
) -> EngineCounters {
    let mut c = EngineCounters {
        events: stats.events,
        control_events: stats.control_events,
        reads: stats.reads,
        writes: stats.writes,
        wall_ms,
        ..EngineCounters::default()
    };
    if let Some(s) = supervision {
        c.shard_restarts = s.shard_restarts;
        c.degradations = s.degradations;
        c.resumed_from_checkpoint = s.resumed_from_checkpoint;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TaskCtx;

    fn racy(ctx: &mut SerialCtx<EventLog>) {
        let x = ctx.shared_var(0u64, "x");
        let x2 = x.clone();
        let _f = ctx.future(move |ctx| x2.write(ctx, 1));
        let _ = x.read(ctx); // no get(): a race
    }

    #[test]
    fn zero_shards_and_zero_checkpoint_are_config_errors() {
        let err = Analyze::program(racy).shards(0).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");
        assert!(err.to_string().contains("shards(0)"));

        let err = Analyze::program(racy).checkpoint_every(0).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Config(_)), "{err}");
        assert!(err.to_string().contains("checkpoint_every(0)"));
    }

    #[test]
    fn program_run_reports_race_and_counters() {
        let out = Analyze::program(racy).run().unwrap();
        assert!(out.has_races());
        assert_eq!(out.stats.shared_mem(), 2);
        assert_eq!(out.engine.checks(), 2);
        assert!(out.sharding.is_none());
        assert!(out.supervision.is_none());
    }

    #[test]
    fn builder_options_compose() {
        let out = Analyze::program(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        })
        .detector(DetectorConfig {
            first_race_only: true,
            ..DetectorConfig::default()
        })
        .shards(2)
        .run()
        .unwrap();
        assert!(!out.has_races());
        let sharding = out.sharding.expect("sharded backend ran");
        assert_eq!(sharding.shards, 2);
    }

    #[test]
    fn trace_bytes_and_events_agree_with_program() {
        let mut log = EventLog::new();
        run_serial(&mut log, racy);
        let blob = crate::runtime::trace::encode(&log.events);

        let from_program = Analyze::program(racy).run().unwrap();
        let from_events = Analyze::events(&log.events).run().unwrap();
        let from_blob = Analyze::trace_bytes(&blob).run().unwrap();
        for out in [&from_events, &from_blob] {
            assert_eq!(out.races.races, from_program.races.races);
            assert_eq!(out.races.total_detected, from_program.races.total_detected);
            assert_eq!(out.stats.shared_mem(), from_program.stats.shared_mem());
        }
    }

    #[test]
    fn supervised_run_completes_with_accounting() {
        let out = Analyze::program(racy)
            .shards(2)
            .checkpoint_every(2)
            .run()
            .unwrap();
        assert!(out.has_races());
        let supervision = out.supervision.expect("supervised backend ran");
        assert_eq!(supervision.resumed_from_checkpoint, 0);
        assert!(out.sharding.is_some());
    }

    #[test]
    fn missing_trace_file_is_an_io_error() {
        let err = Analyze::trace("/nonexistent/definitely-missing.ftrc")
            .run()
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::Io(..)), "{err}");
        assert!(err.to_string().contains("definitely-missing"));
    }

    #[test]
    fn garbage_bytes_are_a_trace_error() {
        let err = Analyze::trace_bytes(&[0xFF, 0xFE, 0xFD]).run().unwrap_err();
        assert!(matches!(err, AnalyzeError::Trace(_)), "{err}");
    }

    #[test]
    fn cache_counters_reach_the_engine_display() {
        let out = Analyze::program(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            for _ in 0..32 {
                let _ = x.read(ctx); // repeated clean reads: fast-path hits
            }
        })
        .run()
        .unwrap();
        assert!(!out.has_races());
        assert!(out.stats.dtrg.shadow_hits > 0);
        assert_eq!(
            out.engine.cache_hits,
            out.stats.dtrg.memo_hits + out.stats.dtrg.shadow_hits
        );
        assert!(out.engine.to_string().contains("cache:"), "{}", out.engine);
    }
}
