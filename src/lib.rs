//! # futrace — determinacy race detection for task parallelism with futures
//!
//! Umbrella crate re-exporting the whole `futrace` workspace: a Rust
//! reproduction of *"Dynamic Determinacy Race Detection for Task Parallelism
//! with Futures"* (Surendran & Sarkar, SPAA 2016).
//!
//! Quick tour:
//!
//! * [`runtime`] — the async/finish/future programming model (serial
//!   depth-first executor with instrumentation, plus a parallel
//!   work-stealing executor), and the analysis engine
//!   ([`runtime::engine`]): every detector implements one
//!   [`runtime::engine::Analysis`] trait and runs live, from replayed
//!   traces, or sharded through the same `run_analysis` driver.
//! * [`detector`] — the paper's contribution: the dynamic task reachability
//!   graph (DTRG) on-the-fly race detector.
//! * [`compgraph`] — step-level computation graphs and the ground-truth
//!   reachability oracle.
//! * [`baselines`] — SP-bags, ESP-bags, vector-clock, and transitive-closure
//!   detectors for comparison.
//! * [`benchsuite`] — the Table-2 benchmarks (Series, Crypt, Jacobi,
//!   Smith-Waterman, Strassen) and random-program generators.
//! * [`offline`] — framed streaming trace format (v2) and the sharded
//!   offline detection pipeline (serial-identical verdicts on N workers).
//! * [`corpus`] — fleet-scale batch analysis: DAG-scheduled corpus runs
//!   over directories of traces, with resume manifests and an aggregated
//!   agreement report (plus the named-detector registry).
//! * [`service`] — the session layer: incremental chunk-fed analyses
//!   with suspend/resume, the `tracetool serve` TCP daemon, and its
//!   streaming client. One-shot `Analyze` runs ride the same sessions.
//! * [`util`] — union-find, interval labels, hashing, stats.
//!
//! ## Two driving surfaces
//!
//! Everything public funnels through two entry points:
//!
//! * [`Analyze`] — the builder covering every *source* (DSL program,
//!   instrumented parallel execution, trace file, trace blob, event
//!   slice) and every *backend* (serial, sharded, supervised, online
//!   parallel), always returning one [`AnalysisOutcome`].
//! * [`runtime::online::ParMonitor`] — the trait a custom analysis
//!   implements to consume the canonical event stream concurrently
//!   (sharded workers, deterministic merge). Any serial
//!   [`runtime::Monitor`] adapts for free via
//!   [`runtime::online::Serialized`].
//!
//! ```
//! use futrace::prelude::*;
//!
//! // A racy program: two async tasks write the same shared cell without
//! // synchronization.
//! let outcome = Analyze::program(|ctx| {
//!     let x = ctx.shared_var(0i64, "x");
//!     ctx.finish(|ctx| {
//!         let xa = x.clone();
//!         ctx.async_task(move |ctx| xa.write(ctx, 1));
//!         let xb = x.clone();
//!         ctx.async_task(move |ctx| xb.write(ctx, 2));
//!     });
//! })
//! .run()
//! .unwrap();
//! assert!(outcome.has_races());
//!
//! // The same program, detected online while it executes on 2 worker
//! // threads: byte-identical verdict, plus pipeline telemetry.
//! let online = Analyze::program_parallel(2, |ctx| {
//!     let x = ctx.shared_var(0i64, "x");
//!     ctx.finish(|ctx| {
//!         let xa = x.clone();
//!         ctx.async_task(move |ctx| xa.write(ctx, 1));
//!         let xb = x.clone();
//!         ctx.async_task(move |ctx| xb.write(ctx, 2));
//!     });
//! })
//! .run()
//! .unwrap();
//! assert_eq!(online.races.races, outcome.races.races);
//! assert!(online.online.is_some());
//! ```

pub mod analyze;

pub use analyze::{AnalysisOutcome, Analyze, AnalyzeError};

pub use futrace_baselines as baselines;
pub use futrace_benchsuite as benchsuite;
pub use futrace_compgraph as compgraph;
pub use futrace_corpus as corpus;
pub use futrace_detector as detector;
pub use futrace_offline as offline;
pub use futrace_runtime as runtime;
pub use futrace_service as service;
pub use futrace_util as util;

/// Convenience prelude for examples and downstream users.
///
/// The two driving surfaces are [`Analyze`] (every source, every
/// backend, one outcome shape) and [`ParMonitor`] (custom analyses over
/// the canonical stream, online). The `detect_races*` helpers are
/// deprecated and no longer re-exported here — migrate to
/// `Analyze::program(f).run()`; they remain reachable at
/// [`detector::detect_races`] until removal.
pub mod prelude {
    pub use crate::analyze::{AnalysisOutcome, Analyze, AnalyzeError};
    pub use futrace_detector::{
        DetectorConfig, DtrgReport, MemoryFootprint, OnlineDtrg, RaceDetector, RaceReport,
    };
    pub use futrace_runtime::accumulator::Accumulator;
    pub use futrace_runtime::engine::{
        run_analysis, run_analysis_live, run_analysis_recorded, Analysis, Engine, EngineCounters,
    };
    pub use futrace_runtime::memory::{SharedArray, SharedVar};
    pub use futrace_runtime::online::{
        run_online, OnlineOptions, OnlineRun, OnlineStats, ParMonitor, Serialized,
    };
    pub use futrace_runtime::serial::{run_serial, FutureHandle, SerialCtx};
    pub use futrace_runtime::{run_parallel, run_parallel_seeded, ParCtx, TaskCtx};
    pub use futrace_util::ids::{LocId, StepId, TaskId};
}
