//! # futrace — determinacy race detection for task parallelism with futures
//!
//! Umbrella crate re-exporting the whole `futrace` workspace: a Rust
//! reproduction of *"Dynamic Determinacy Race Detection for Task Parallelism
//! with Futures"* (Surendran & Sarkar, SPAA 2016).
//!
//! Quick tour:
//!
//! * [`runtime`] — the async/finish/future programming model (serial
//!   depth-first executor with instrumentation, plus a parallel
//!   work-stealing executor), and the analysis engine
//!   ([`runtime::engine`]): every detector implements one
//!   [`runtime::engine::Analysis`] trait and runs live, from replayed
//!   traces, or sharded through the same `run_analysis` driver.
//! * [`detector`] — the paper's contribution: the dynamic task reachability
//!   graph (DTRG) on-the-fly race detector.
//! * [`compgraph`] — step-level computation graphs and the ground-truth
//!   reachability oracle.
//! * [`baselines`] — SP-bags, ESP-bags, vector-clock, and transitive-closure
//!   detectors for comparison.
//! * [`benchsuite`] — the Table-2 benchmarks (Series, Crypt, Jacobi,
//!   Smith-Waterman, Strassen) and random-program generators.
//! * [`offline`] — framed streaming trace format (v2) and the sharded
//!   offline detection pipeline (serial-identical verdicts on N workers).
//! * [`corpus`] — fleet-scale batch analysis: DAG-scheduled corpus runs
//!   over directories of traces, with resume manifests and an aggregated
//!   agreement report (plus the named-detector registry).
//! * [`service`] — the session layer: incremental chunk-fed analyses
//!   with suspend/resume, the `tracetool serve` TCP daemon, and its
//!   streaming client. One-shot `Analyze` runs ride the same sessions.
//! * [`util`] — union-find, interval labels, hashing, stats.
//!
//! ```
//! use futrace::prelude::*;
//!
//! // A racy program: two async tasks write the same shared cell without
//! // synchronization.
//! let outcome = Analyze::program(|ctx| {
//!     let x = ctx.shared_var(0i64, "x");
//!     ctx.finish(|ctx| {
//!         let xa = x.clone();
//!         ctx.async_task(move |ctx| xa.write(ctx, 1));
//!         let xb = x.clone();
//!         ctx.async_task(move |ctx| xb.write(ctx, 2));
//!     });
//! })
//! .run()
//! .unwrap();
//! assert!(outcome.has_races());
//! ```

pub mod analyze;

pub use analyze::{AnalysisOutcome, Analyze, AnalyzeError};

pub use futrace_baselines as baselines;
pub use futrace_benchsuite as benchsuite;
pub use futrace_compgraph as compgraph;
pub use futrace_corpus as corpus;
pub use futrace_detector as detector;
pub use futrace_offline as offline;
pub use futrace_runtime as runtime;
pub use futrace_service as service;
pub use futrace_util as util;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use crate::analyze::{AnalysisOutcome, Analyze, AnalyzeError};
    // The deprecated entry points stay exported so existing callers keep
    // compiling during the migration window.
    #[allow(deprecated)]
    pub use futrace_detector::{detect_races, detect_races_in_trace, detect_races_with_stats};
    pub use futrace_detector::{
        DetectorConfig, DtrgReport, MemoryFootprint, RaceDetector, RaceReport,
    };
    pub use futrace_runtime::accumulator::Accumulator;
    pub use futrace_runtime::engine::{
        run_analysis, run_analysis_live, run_analysis_recorded, Analysis, Engine, EngineCounters,
    };
    pub use futrace_runtime::memory::{SharedArray, SharedVar};
    pub use futrace_runtime::serial::{run_serial, FutureHandle, SerialCtx};
    pub use futrace_runtime::{run_parallel, TaskCtx};
    pub use futrace_util::ids::{LocId, StepId, TaskId};
}
