//! Accumulators and the detector: reductions through
//! [`futrace::runtime::accumulator`] are race-free by construction and
//! invisible to the shadow memory, so a program whose cross-task
//! communication is accumulator-only is certified race-free — while the
//! same reduction hand-rolled over a shared cell is (correctly) racy.

use futrace::Analyze;
use futrace::runtime::accumulator::{Accumulator, MaxOp, SumOp};
use futrace::runtime::{run_parallel, TaskCtx};

#[test]
fn accumulator_reduction_is_race_free() {
    let report = Analyze::program(|ctx| {
        let acc = Accumulator::<u64, SumOp>::new();
        ctx.finish(|ctx| {
            for i in 1..=64u64 {
                let acc = acc.clone();
                ctx.async_task(move |_| acc.put(i));
            }
        });
        assert_eq!(acc.get(), 64 * 65 / 2);
    })
    .run()
    .unwrap();
    assert!(!report.has_races());
}

#[test]
fn hand_rolled_reduction_is_racy() {
    // The same sum through a shared cell: read-modify-write per task —
    // the detector flags it, which is exactly why HJ offers accumulators.
    let report = Analyze::program(|ctx| {
        let cell = ctx.shared_var(0u64, "sum");
        ctx.finish(|ctx| {
            for i in 1..=8u64 {
                let cell = cell.clone();
                ctx.async_task(move |ctx| {
                    let old = cell.read(ctx);
                    cell.write(ctx, old + i);
                });
            }
        });
    })
    .run()
    .unwrap();
    assert!(report.has_races());
}

#[test]
fn mixed_accumulator_and_shared_memory_program() {
    // Shared-memory traffic stays fully checked around accumulator use.
    let report = Analyze::program(|ctx| {
        let data = ctx.shared_array(32, 0u64, "data");
        let best = Accumulator::<u64, MaxOp>::new();
        // Phase 1: fill the array (disjoint writes, race-free).
        ctx.finish(|ctx| {
            let d = data.clone();
            ctx.forasync(0..32, move |ctx, i| d.write(ctx, i, (i * 7 % 13) as u64));
        });
        // Phase 2: parallel max over it.
        ctx.finish(|ctx| {
            let d = data.clone();
            let b = best.clone();
            ctx.forasync(0..32, move |ctx, i| b.put(d.read(ctx, i)));
        });
        assert_eq!(best.get(), 12);
    })
    .run()
    .unwrap();
    assert!(!report.has_races());
}

#[test]
fn parallel_accumulator_agrees_with_serial() {
    let run = |threads: usize| {
        run_parallel(threads, |ctx| {
            let acc = Accumulator::<i64, SumOp>::new();
            ctx.finish(|ctx| {
                for i in -50..=50i64 {
                    let acc = acc.clone();
                    ctx.async_task(move |_| acc.put(i * i));
                }
            });
            acc.get()
        })
        .unwrap()
    };
    let expected: i64 = (-50..=50i64).map(|i| i * i).sum();
    for threads in [1, 2, 4] {
        assert_eq!(run(threads), expected);
    }
}
