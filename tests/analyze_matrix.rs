//! Property test over the `Analyze` builder's option matrix: every
//! combination of source (event slice, flat v1 blob, framed v2 blob),
//! shard count, leniency, and supervision either reproduces the serial
//! baseline's verdict exactly or fails up front with a structured
//! [`AnalyzeError::Config`] — never a panic and never a silently
//! different backend.

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::detector::DetectorConfig;
use futrace::offline::StreamWriter;
use futrace::runtime::{replay, run_serial, trace, Event, EventLog};
use futrace::util::propcheck::{self, strategies, Config};
use futrace::{Analyze, AnalyzeError};

fn record(seed: u64) -> EventLog {
    let prog = generate(seed, &GenParams::nontree_heavy());
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        execute(ctx, &prog);
    });
    log
}

/// Framed-v2 encoding with a small chunk size, so even short programs
/// span several chunks and exercise the chunk-boundary paths.
fn framed(events: &[Event], chunk_bytes: usize) -> Vec<u8> {
    let mut w = StreamWriter::with_chunk_bytes(Vec::new(), chunk_bytes)
        .expect("writing to a Vec cannot fail");
    replay(events, &mut w);
    w.finish().expect("writing to a Vec cannot fail").0
}

/// The three source forms, rebuilt per run because `Analyze` is a
/// by-value builder.
fn source<'a>(which: usize, events: &'a [Event], v1: &'a [u8], v2: &'a [u8]) -> Analyze<'a> {
    match which {
        0 => Analyze::events(events),
        1 => Analyze::trace_bytes(v1),
        _ => Analyze::trace_bytes(v2),
    }
}

const SOURCES: [&str; 3] = ["events", "v1 blob", "v2 framed"];

#[test]
fn every_option_combination_matches_the_serial_verdict() {
    let config = Config::named("cargo test --test analyze_matrix").cases(24);
    propcheck::check(&config, &strategies::any_u64(), |seed| {
        let log = record(seed);
        let v1 = trace::encode(&log.events);
        let v2 = framed(&log.events, 128);
        let baseline = Analyze::events(&log.events).run().expect("serial baseline");

        for (which, name) in SOURCES.iter().enumerate() {
            for shards in [None, Some(1), Some(2), Some(4)] {
                for lenient in [false, true] {
                    let mut a = source(which, &log.events, &v1, &v2).lenient(lenient);
                    if let Some(n) = shards {
                        a = a.shards(n);
                    }
                    let out = a.run().unwrap_or_else(|e| {
                        panic!("seed {seed} {name} shards {shards:?} lenient {lenient}: {e}")
                    });
                    assert_eq!(
                        out.races.races, baseline.races.races,
                        "seed {seed} {name} shards {shards:?} lenient {lenient}"
                    );
                    assert_eq!(
                        out.races.total_detected, baseline.races.total_detected,
                        "seed {seed} {name} shards {shards:?} lenient {lenient}"
                    );
                }
            }

            // Supervised (checkpointing) backend, same verdict.
            let out = source(which, &log.events, &v1, &v2)
                .shards(2)
                .checkpoint_every(2)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed} {name} supervised: {e}"));
            assert_eq!(out.races.races, baseline.races.races, "seed {seed} {name} supervised");

            // A capped detector config changes how much is reported,
            // never whether a race exists.
            let out = source(which, &log.events, &v1, &v2)
                .detector(DetectorConfig {
                    first_race_only: true,
                    ..DetectorConfig::default()
                })
                .run()
                .unwrap_or_else(|e| panic!("seed {seed} {name} first-race: {e}"));
            assert_eq!(out.has_races(), baseline.has_races(), "seed {seed} {name} first-race");
        }
    });
}

#[test]
fn invalid_options_are_structured_errors_for_every_source() {
    let log = record(7);
    let v1 = trace::encode(&log.events);
    let v2 = framed(&log.events, 128);

    for (which, name) in SOURCES.iter().enumerate() {
        let err = source(which, &log.events, &v1, &v2)
            .shards(0)
            .run()
            .expect_err("shards(0) must not run");
        assert!(matches!(err, AnalyzeError::Config(_)), "{name}: {err}");

        let err = source(which, &log.events, &v1, &v2)
            .checkpoint_every(0)
            .run()
            .expect_err("checkpoint_every(0) must not run");
        assert!(matches!(err, AnalyzeError::Config(_)), "{name}: {err}");

        // The error wins even when combined with otherwise-valid options.
        let err = source(which, &log.events, &v1, &v2)
            .shards(0)
            .checkpoint_every(4)
            .lenient(true)
            .run()
            .expect_err("shards(0) must not run supervised either");
        assert!(matches!(err, AnalyzeError::Config(_)), "{name}: {err}");
    }
}
