//! Appendix A as tests: data-race freedom ⇒ deadlock freedom, and the
//! converse diagnosis — a program that *can* deadlock necessarily has a race on its
//! future handles, which the serial detector finds in one run.

use futrace::prelude::*;
use futrace::runtime::DeadlockError;

/// The Appendix-A program's handle exchange, modeled with shared cells:
/// each async publishes its future's handle to a cell the *other* side
/// reads without synchronization. Generic over the monitor so it runs
/// under the engine-wrapped detector that `detect_races` now drives.
fn racy_handle_exchange<M: futrace::runtime::Monitor>(ctx: &mut SerialCtx<M>) {
    let slot_a = ctx.shared_var(0u32, "handle.a");
    let slot_b = ctx.shared_var(0u32, "handle.b");
    let (sa, sb) = (slot_a.clone(), slot_b.clone());
    ctx.async_task(move |ctx| {
        let sb2 = sb.clone();
        let _fa = ctx.future(move |ctx| {
            let _ = sb2.read(ctx); // obtain b's handle — racy
        });
        sa.write(ctx, 1); // publish a's handle — racy
    });
    let (sa, sb) = (slot_a.clone(), slot_b.clone());
    ctx.async_task(move |ctx| {
        let sa2 = sa.clone();
        let _fb = ctx.future(move |ctx| {
            let _ = sa2.read(ctx);
        });
        sb.write(ctx, 2);
    });
}

#[test]
fn handle_race_is_detected_serially() {
    let report = Analyze::program(racy_handle_exchange).run().unwrap().races;
    assert!(report.has_races());
    let first = report.first().unwrap();
    assert!(
        first.loc_name.starts_with("handle."),
        "the race is on the handle cells, got {}",
        first.loc_name
    );
}

#[test]
fn synchronized_handle_exchange_is_race_free_and_cannot_deadlock() {
    // The fixed protocol: handles flow through finish boundaries (the
    // consumers start only after the producers' finish completed), so no
    // cycle can form and the detector certifies it.
    let report = Analyze::program(|ctx| {
        let slot_a = ctx.shared_var(0u32, "handle.a");
        let sa = slot_a.clone();
        ctx.finish(|ctx| {
            ctx.async_task(move |ctx| sa.write(ctx, 1));
        });
        // After the finish: reading the handle is ordered.
        ctx.async_task(move |ctx| {
            let _ = slot_a.read(ctx);
        });
    }).run().unwrap().races;
    assert!(!report.has_races());
}

#[test]
fn parallel_cycle_is_reported_as_deadlock() {
    use std::sync::mpsc;
    let (txa, rxa) = mpsc::channel();
    let (txb, rxb) = mpsc::channel();
    let res: Result<u64, DeadlockError> = run_parallel(3, move |ctx| {
        let fa = ctx.future(move |ctx| {
            let hb = rxb.recv().unwrap();
            ctx.get(&hb)
        });
        txa.send(fa.clone()).unwrap();
        let fb = ctx.future(move |ctx| {
            let ha = rxa.recv().unwrap();
            ctx.get(&ha)
        });
        txb.send(fb.clone()).unwrap();
        ctx.get(&fa)
    });
    let err = res.unwrap_err();
    assert!(err.blocked_waits >= 2, "got {err}");
}

#[test]
fn race_free_random_programs_never_deadlock_in_parallel() {
    // Lemma 2 in bulk: every race-free random program completes under the
    // parallel executor (already exercised at 2/4 threads in
    // determinism.rs; here with a single thread, the adversarial case for
    // compensated blocking).
    use futrace::benchsuite::randomprog::{execute, generate, GenParams};
    use futrace::runtime::TaskCtx;
    let mut checked = 0;
    for seed in 0..120u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        let report = Analyze::program(|ctx| {
            execute(ctx, &prog);
        }).run().unwrap().races;
        if report.has_races() {
            continue;
        }
        checked += 1;
        let res = run_parallel(1, |ctx| {
            let mut out = None;
            ctx.finish(|ctx| out = Some(execute(ctx, &prog)));
            out.unwrap().snapshot()
        });
        assert!(res.is_ok(), "seed {seed}: {res:?}");
        if checked >= 30 {
            break;
        }
    }
    assert!(checked >= 10);
}
