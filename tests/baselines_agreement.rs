//! Cross-detector agreement.
//!
//! * On **async-finish** programs every implemented detector is exact, so
//!   all five verdicts must coincide (DTRG, SP-bags*, ESP-bags,
//!   vector-clock, transitive closure). *SP-bags runs in lenient mode and
//!   is exact only on spawn-sync-shaped programs, so it is compared only
//!   when the program's finish structure is spawn-sync-like — ESP-bags and
//!   the rest are compared on everything.
//! * On **future** programs ESP-bags is expected to over-approximate
//!   (dropped `get` edges can only add parallelism, never hide it): if the
//!   truth is racy, ESP-bags must also say racy.

use futrace::baselines::{
    run_baseline, BaselineDetector, ClosureDetector, EspBags, OffsetSpan, Spd3,
    VectorClockDetector,
};
use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::detector::detect_races;

#[test]
fn async_finish_programs_all_detectors_agree() {
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::async_finish_only());
        let dtrg = detect_races(|ctx| {
            execute(ctx, &prog);
        })
        .has_races();

        let mut esp = EspBags::new();
        run_baseline(&mut esp, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(esp.has_races(), dtrg, "esp-bags vs dtrg, seed {seed}");
        assert_eq!(esp.ignored_gets, 0);

        let mut vc = VectorClockDetector::new();
        run_baseline(&mut vc, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(vc.has_races(), dtrg, "vector-clock vs dtrg, seed {seed}");

        let mut cl = ClosureDetector::new();
        run_baseline(&mut cl, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(cl.has_races(), dtrg, "closure vs dtrg, seed {seed}");

        let mut os = OffsetSpan::new();
        run_baseline(&mut os, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(os.has_races(), dtrg, "offset-span vs dtrg, seed {seed}");

        let mut dp = Spd3::new();
        run_baseline(&mut dp, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(dp.has_races(), dtrg, "spd3 vs dtrg, seed {seed}");
        assert_eq!(dp.ignored_gets, 0);
    }
}

#[test]
fn future_programs_dtrg_vclock_closure_agree() {
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        let dtrg = detect_races(|ctx| {
            execute(ctx, &prog);
        })
        .has_races();

        let mut vc = VectorClockDetector::new();
        run_baseline(&mut vc, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(vc.has_races(), dtrg, "vector-clock vs dtrg, seed {seed}");

        let mut cl = ClosureDetector::new();
        run_baseline(&mut cl, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(cl.has_races(), dtrg, "closure vs dtrg, seed {seed}");
    }
}

#[test]
fn esp_bags_over_approximates_on_futures() {
    let mut over_approximations = 0u32;
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        let truth = detect_races(|ctx| {
            execute(ctx, &prog);
        })
        .has_races();

        let mut esp = EspBags::new();
        run_baseline(&mut esp, |ctx| {
            execute(ctx, &prog);
        });
        if truth {
            assert!(
                esp.has_races(),
                "dropping get edges can only widen parallelism; seed {seed}"
            );
        } else if esp.has_races() {
            over_approximations += 1; // documented false positive
        }
    }
    assert!(
        over_approximations > 0,
        "the sweep should exhibit ESP-bags' false positives on future-synchronized programs"
    );
}
