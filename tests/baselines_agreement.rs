//! Cross-detector agreement.
//!
//! * On **async-finish** programs every implemented detector is exact, so
//!   all five verdicts must coincide (DTRG, SP-bags*, ESP-bags,
//!   vector-clock, transitive closure). *SP-bags runs in lenient mode and
//!   is exact only on spawn-sync-shaped programs, so it is compared only
//!   when the program's finish structure is spawn-sync-like — ESP-bags and
//!   the rest are compared on everything.
//! * On **future** programs ESP-bags is expected to over-approximate
//!   (dropped `get` edges can only add parallelism, never hide it): if the
//!   truth is racy, ESP-bags must also say racy.

use futrace::baselines::{
    run_baseline, BaselineDetector, ClosureDetector, EspBags, OffsetSpan, SpBags, Spd3,
    VectorClockDetector,
};
use futrace::benchsuite::randomprog::{execute, generate, GenParams, Program};
use futrace::detector::RaceDetector;
use futrace::Analyze;
use futrace::offline::{run_sharded_events, trace_events, ShardPlan, StreamWriter};
use futrace::runtime::engine::{run_analysis, run_analysis_live, source, Analysis};
use futrace::runtime::run_serial;
use futrace::util::propcheck::{self, strategies, Config};

#[test]
fn async_finish_programs_all_detectors_agree() {
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::async_finish_only());
        let dtrg = Analyze::program(|ctx| {
            execute(ctx, &prog);
        })
        .run()
        .unwrap()
        .has_races();

        let mut esp = EspBags::new();
        run_baseline(&mut esp, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(esp.has_races(), dtrg, "esp-bags vs dtrg, seed {seed}");
        assert_eq!(esp.ignored_gets, 0);

        let mut vc = VectorClockDetector::new();
        run_baseline(&mut vc, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(vc.has_races(), dtrg, "vector-clock vs dtrg, seed {seed}");

        let mut cl = ClosureDetector::new();
        run_baseline(&mut cl, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(cl.has_races(), dtrg, "closure vs dtrg, seed {seed}");

        let mut os = OffsetSpan::new();
        run_baseline(&mut os, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(os.has_races(), dtrg, "offset-span vs dtrg, seed {seed}");

        let mut dp = Spd3::new();
        run_baseline(&mut dp, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(dp.has_races(), dtrg, "spd3 vs dtrg, seed {seed}");
        assert_eq!(dp.ignored_gets, 0);
    }
}

#[test]
fn future_programs_dtrg_vclock_closure_agree() {
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        let dtrg = Analyze::program(|ctx| {
            execute(ctx, &prog);
        })
        .run()
        .unwrap()
        .has_races();

        let mut vc = VectorClockDetector::new();
        run_baseline(&mut vc, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(vc.has_races(), dtrg, "vector-clock vs dtrg, seed {seed}");

        let mut cl = ClosureDetector::new();
        run_baseline(&mut cl, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(cl.has_races(), dtrg, "closure vs dtrg, seed {seed}");
    }
}

#[test]
fn esp_bags_over_approximates_on_futures() {
    let mut over_approximations = 0u32;
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        let truth = Analyze::program(|ctx| {
            execute(ctx, &prog);
        })
        .run()
        .unwrap()
        .has_races();

        let mut esp = EspBags::new();
        run_baseline(&mut esp, |ctx| {
            execute(ctx, &prog);
        });
        if truth {
            assert!(
                esp.has_races(),
                "dropping get edges can only widen parallelism; seed {seed}"
            );
        } else if esp.has_races() {
            over_approximations += 1; // documented false positive
        }
    }
    assert!(
        over_approximations > 0,
        "the sweep should exhibit ESP-bags' false positives on future-synchronized programs"
    );
}

/// Records `prog`'s event stream as a framed v2 blob with a tiny chunk
/// size, so even small programs span several chunks and exercise the
/// framing on every case.
fn record_framed(prog: &Program) -> Vec<u8> {
    let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 256).expect("header");
    run_serial(&mut w, |ctx| {
        execute(ctx, prog);
    });
    let (blob, _) = w.finish().expect("finish");
    blob
}

/// Runs one detector live and replayed-from-frames, asserting that the
/// verdicts and the engine's stream accounting agree.
fn assert_live_matches_replay<A, F, R>(name: &str, seed: u64, prog: &Program, blob: &[u8], make: F, racy: R)
where
    A: Analysis,
    F: Fn() -> A,
    R: Fn(&A::Report) -> bool,
{
    let live = run_analysis_live(
        |ctx| {
            execute(ctx, prog);
        },
        make(),
    );
    let replayed = run_analysis(source::stream(trace_events(blob, false)), make())
        .unwrap_or_else(|e| panic!("{name}, seed {seed}: replay failed: {e}"));
    assert_eq!(
        racy(&live.report),
        racy(&replayed.report),
        "{name}, seed {seed}: live and replayed verdicts differ"
    );
    assert_eq!(
        live.counters.events, replayed.counters.events,
        "{name}, seed {seed}: event counts differ"
    );
    assert_eq!(
        live.counters.checks(),
        replayed.counters.checks(),
        "{name}, seed {seed}: check counts differ"
    );
}

#[test]
fn every_baseline_replays_framed_traces_to_its_live_verdict() {
    // ≥256 random programs: each is recorded once to a framed v2 trace,
    // then every detector in the workspace runs both live and from the
    // replayed frames through the same engine driver. SP-bags and
    // offset-span run lenient (the default mix contains futures, which
    // are out of their model).
    propcheck::check(&Config::with_cases(256), &strategies::any_u64(), |seed| {
        let prog = generate(seed, &GenParams::default());
        let blob = record_framed(&prog);
        let b = blob.as_slice();
        assert_live_matches_replay("dtrg", seed, &prog, b, RaceDetector::new, |r| {
            r.report.has_races()
        });
        assert_live_matches_replay("espbags", seed, &prog, b, EspBags::new, |r| r.has_races());
        assert_live_matches_replay("spbags", seed, &prog, b, SpBags::new_lenient, |r| {
            r.has_races()
        });
        assert_live_matches_replay("offsetspan", seed, &prog, b, OffsetSpan::new_lenient, |r| {
            r.has_races()
        });
        assert_live_matches_replay("spd3", seed, &prog, b, Spd3::new, |r| r.has_races());
        assert_live_matches_replay("vc", seed, &prog, b, VectorClockDetector::new, |r| {
            r.has_races()
        });
        assert_live_matches_replay("closure", seed, &prog, b, ClosureDetector::new, |r| {
            r.has_races()
        });

        // The loc-routable detectors must also agree when the same frames
        // are sharded across 3 workers.
        let plan = ShardPlan::with_shards(3);
        let serial = run_analysis(
            source::stream(trace_events(b, false)),
            RaceDetector::new(),
        )
        .expect("serial dtrg");
        let sharded = run_sharded_events(trace_events(b, false), &plan, RaceDetector::new)
            .expect("sharded dtrg");
        assert_eq!(
            serial.report.report.races, sharded.report.report.races,
            "dtrg sharded, seed {seed}"
        );
        let serial_vc = run_analysis(
            source::stream(trace_events(b, false)),
            VectorClockDetector::new(),
        )
        .expect("serial vc");
        let sharded_vc =
            run_sharded_events(trace_events(b, false), &plan, VectorClockDetector::new)
                .expect("sharded vc");
        assert_eq!(
            serial_vc.report.races, sharded_vc.report.races,
            "vc sharded, seed {seed}"
        );
    });
}
