//! Cross-crate integration checks on the Table-2 benchmarks: detector vs.
//! oracle on the real workloads (tiny sizes), planted races, and the
//! structural formulas.

use futrace::baselines::{run_baseline, BaselineDetector, ClosureDetector, EspBags};
use futrace::benchsuite::{crypt, jacobi, series, smithwaterman, strassen};
use futrace::Analyze;

#[test]
fn jacobi_detector_matches_oracle_clean_and_planted() {
    let p = jacobi::JacobiParams::tiny();
    for planted in [false, true] {
        let outcome = Analyze::program(|ctx| {
            jacobi::jacobi_run(ctx, &p, planted);
        }).run().unwrap();
        let report = outcome.races;
        let mut oracle = ClosureDetector::new();
        run_baseline(&mut oracle, |ctx| {
            jacobi::jacobi_run(ctx, &p, planted);
        });
        assert_eq!(report.has_races(), planted);
        assert_eq!(oracle.has_races(), planted);
    }
}

#[test]
fn smithwaterman_detector_matches_oracle_clean_and_planted() {
    let p = smithwaterman::SwParams::tiny();
    for planted in [false, true] {
        let outcome = Analyze::program(|ctx| {
            smithwaterman::sw_run(ctx, &p, planted);
        }).run().unwrap();
        let report = outcome.races;
        let mut oracle = ClosureDetector::new();
        run_baseline(&mut oracle, |ctx| {
            smithwaterman::sw_run(ctx, &p, planted);
        });
        assert_eq!(report.has_races(), planted);
        assert_eq!(oracle.has_races(), planted);
    }
}

#[test]
fn strassen_oracle_confirms_race_freedom() {
    let p = strassen::StrassenParams::tiny();
    let mut oracle = ClosureDetector::new();
    run_baseline(&mut oracle, |ctx| {
        strassen::strassen_run(ctx, &p);
    });
    assert!(!oracle.has_races());
}

#[test]
fn series_and_crypt_match_esp_bags_on_af_variants() {
    // The af variants are pure async-finish: ESP-bags is exact there and
    // must agree with the DTRG detector (both: race-free).
    let sp = series::SeriesParams::tiny();
    let outcome = Analyze::program(|ctx| {
        series::series_af(ctx, &sp);
    }).run().unwrap();
    let rep = outcome.races;
    let mut esp = EspBags::new();
    run_baseline(&mut esp, |ctx| {
        series::series_af(ctx, &sp);
    });
    assert!(!rep.has_races());
    assert!(!esp.has_races());
    assert_eq!(esp.ignored_gets, 0);

    let cp = crypt::CryptParams::tiny();
    let outcome = Analyze::program(|ctx| {
        crypt::crypt_run(ctx, &cp, crypt::CryptVariant::AsyncFinish);
    }).run().unwrap();
    let rep = outcome.races;
    let mut esp = EspBags::new();
    run_baseline(&mut esp, |ctx| {
        crypt::crypt_run(ctx, &cp, crypt::CryptVariant::AsyncFinish);
    });
    assert!(!rep.has_races());
    assert!(!esp.has_races());
}

#[test]
fn structural_formulas_hold_at_scaled_sizes() {
    // Beyond the tiny sizes used elsewhere, verify #Tasks / #NTJoins at
    // the laptop-scale parameters (cheap structural runs: Jacobi + SW).
    let p = jacobi::JacobiParams::scaled();
    let outcome = Analyze::program(|ctx| {
        jacobi::jacobi_run(ctx, &p, false);
    }).run().unwrap();
    let (rep, stats) = (outcome.races, outcome.stats);
    assert!(!rep.has_races());
    assert_eq!(stats.tasks, jacobi::expected_tasks(&p));
    assert_eq!(stats.nt_joins(), jacobi::expected_nt_joins(&p));

    let p = smithwaterman::SwParams {
        n: 200,
        tiles: 10,
        seed: 0xac97,
    };
    let outcome = Analyze::program(|ctx| {
        smithwaterman::sw_run(ctx, &p, false);
    }).run().unwrap();
    let (rep, stats) = (outcome.races, outcome.stats);
    assert!(!rep.has_races());
    assert_eq!(stats.tasks, smithwaterman::expected_tasks(&p));
    assert_eq!(stats.nt_joins(), smithwaterman::expected_nt_joins(&p));
}

#[test]
fn planted_race_reports_point_at_the_grid() {
    let p = jacobi::JacobiParams::tiny();
    let outcome = Analyze::program(|ctx| {
        jacobi::jacobi_run(ctx, &p, true);
    }).run().unwrap();
    let report = outcome.races;
    let first = report.first().expect("planted race");
    assert!(
        first.loc_name.starts_with("jacobi."),
        "race should name the grid array, got {}",
        first.loc_name
    );
}
