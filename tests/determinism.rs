//! The determinism property (Appendix A): a race-free async/finish/future
//! program is functionally and structurally deterministic — every parallel
//! schedule computes the serial elision's answer — and deadlock-free.
//!
//! Also checks the detector itself is deterministic: the paper guarantees
//! "if a race is reported for a given input in one run of our algorithm,
//! it will always be reported in all runs".

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::detector::RaceDetector;
use futrace::Analyze;
use futrace::runtime::{run_parallel, run_serial, EventLog, NullMonitor, TaskCtx};

#[test]
fn detector_verdict_is_run_independent() {
    for seed in 0..200u64 {
        let prog = generate(seed, &GenParams::default());
        let r1 = Analyze::program(|ctx| {
            execute(ctx, &prog);
        }).run().unwrap().races;
        let r2 = Analyze::program(|ctx| {
            execute(ctx, &prog);
        }).run().unwrap().races;
        assert_eq!(r1.has_races(), r2.has_races(), "seed {seed}");
        assert_eq!(r1.total_detected, r2.total_detected, "seed {seed}");
        assert_eq!(r1.races, r2.races, "seed {seed}");
    }
}

#[test]
fn serial_event_stream_is_deterministic() {
    for seed in [3u64, 17, 99] {
        let prog = generate(seed, &GenParams::future_heavy());
        let run = || {
            let mut log = EventLog::new();
            run_serial(&mut log, |ctx| {
                execute(ctx, &prog);
            });
            log.events
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}

#[test]
fn race_free_programs_are_schedule_deterministic() {
    // For every race-free random program, the parallel executor (multiple
    // times, multiple widths) must produce exactly the serial elision's
    // final memory.
    let mut race_free_found = 0;
    for seed in 0..300u64 {
        let prog = generate(seed, &GenParams::default());
        let report = Analyze::program(|ctx| {
            execute(ctx, &prog);
        }).run().unwrap().races;
        if report.has_races() {
            continue;
        }
        race_free_found += 1;
        let mut mon = NullMonitor;
        let want = run_serial(&mut mon, |ctx| execute(ctx, &prog).snapshot());
        for threads in [2usize, 4] {
            let got = run_parallel(threads, |ctx| {
                // Snapshot only after every spawned task completed: wrap
                // the program in an explicit finish (the serial executor
                // gets this for free from depth-first run-to-completion).
                let mut mem = None;
                ctx.finish(|ctx| mem = Some(execute(ctx, &prog)));
                mem.unwrap().snapshot()
            })
            .expect("race-free => deadlock-free");
            assert_eq!(got, want, "seed {seed} threads {threads}");
        }
        if race_free_found >= 60 {
            break;
        }
    }
    assert!(
        race_free_found >= 20,
        "need a healthy sample of race-free programs, got {race_free_found}"
    );
}

#[test]
fn detector_stats_are_deterministic() {
    let prog = generate(12345, &GenParams::future_heavy());
    let run = || {
        let mut det = RaceDetector::new();
        run_serial(&mut det, |ctx| {
            execute(ctx, &prog);
        });
        let s = det.stats();
        (
            s.tasks,
            s.reads,
            s.writes,
            s.dtrg.gets,
            s.dtrg.nt_edges,
            s.dtrg.merges,
        )
    };
    assert_eq!(run(), run());
}
