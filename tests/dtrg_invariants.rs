//! White-box invariants of the dynamic task reachability graph, checked
//! over random program executions (§4.1's data-structure properties).

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::compgraph::GraphBuilder;
use futrace::detector::RaceDetector;
use futrace::runtime::monitor::Pair;
use futrace::runtime::run_serial;
use futrace_util::ids::TaskId;

fn run_both(seed: u64, params: &GenParams) -> (RaceDetector, futrace::compgraph::CompGraph) {
    let prog = generate(seed, params);
    let mut mon = Pair(RaceDetector::new(), GraphBuilder::new());
    run_serial(&mut mon, |ctx| {
        execute(ctx, &prog);
    });
    let Pair(det, builder) = mon;
    (det, builder.into_graph())
}

#[test]
fn own_interval_labels_encode_spawn_tree_ancestry() {
    for seed in 0..150u64 {
        let (det, graph) = run_both(seed, &GenParams::future_heavy());
        let dtrg = det.dtrg();
        let n = graph.task_count();
        assert_eq!(dtrg.task_count(), n);
        for a in 0..n {
            for d in 0..n {
                let (ta, td) = (TaskId::from_index(a), TaskId::from_index(d));
                assert_eq!(
                    dtrg.is_ancestor(ta, td),
                    graph.is_ancestor(ta, td),
                    "seed {seed}: ancestry of {ta} vs {td}"
                );
            }
        }
    }
}

#[test]
fn intervals_are_laminar() {
    for seed in 0..150u64 {
        let (det, _) = run_both(seed, &GenParams::default());
        let dtrg = det.dtrg();
        let n = dtrg.task_count();
        for a in 0..n {
            for b in 0..n {
                let (ia, ib) = (
                    dtrg.meta(TaskId::from_index(a)).own,
                    dtrg.meta(TaskId::from_index(b)).own,
                );
                assert!(
                    ia.contains(&ib) || ib.contains(&ia) || ia.disjoint(&ib),
                    "seed {seed}: intervals must nest or be disjoint"
                );
            }
        }
    }
}

#[test]
fn set_labels_are_ancestor_most_member_labels() {
    // The label of a disjoint set equals the own label of the member
    // closest to the spawn-tree root (Definition 1 of §4.1).
    for seed in 0..150u64 {
        let (det, _) = run_both(seed, &GenParams::future_heavy());
        let mut dtrg = det.dtrg().clone();
        let n = dtrg.task_count();
        // Group members by representative.
        let mut groups: std::collections::HashMap<u64, Vec<TaskId>> = Default::default();
        for t in 0..n {
            let tid = TaskId::from_index(t);
            let label = dtrg.set_data(tid).interval;
            groups.entry(label.pre).or_default().push(tid);
        }
        for (pre, members) in groups {
            // The ancestor-most member is the one whose own label has the
            // smallest preorder; the set label must equal its own label.
            let top = members
                .iter()
                .min_by_key(|t| dtrg.meta(**t).own.pre)
                .copied()
                .unwrap();
            let own = dtrg.meta(top).own;
            assert_eq!(own.pre, pre, "seed {seed}: set label is top's label");
            for m in members {
                assert!(
                    own.contains(&dtrg.meta(m).own),
                    "seed {seed}: top member dominates the set"
                );
            }
        }
    }
}

#[test]
fn set_members_join_into_the_set_top() {
    // The property the detector's same-set short-circuit relies on: every
    // member of a disjoint set is connected *to the set's ancestor-most
    // member (its top)* by tree-join/continue edges, i.e. the member's
    // last step reaches the top's last step in the computation graph.
    // (Members need no join path between *each other*: a finish-end merges
    // all of its IEF registrants into the finish owner's set at once.)
    use futrace::compgraph::oracle::Reachability;
    for seed in 0..100u64 {
        let (det, graph) = run_both(seed, &GenParams::default());
        let mut dtrg = det.dtrg().clone();
        let reach = Reachability::build(&graph);
        let n = graph.task_count();
        // Find each set's top: the member with the smallest own preorder.
        let mut top: std::collections::HashMap<u64, TaskId> = Default::default();
        for t in 0..n {
            let tid = TaskId::from_index(t);
            let key = dtrg.set_data(tid).interval.pre;
            let e = top.entry(key).or_insert(tid);
            if dtrg.meta(tid).own.pre < dtrg.meta(*e).own.pre {
                *e = tid;
            }
        }
        for t in 0..n {
            let tid = TaskId::from_index(t);
            let key = dtrg.set_data(tid).interval.pre;
            let top_id = top[&key];
            if top_id == tid {
                continue;
            }
            let from = graph.tasks[t].last_step;
            let to = graph.tasks[top_id.index()].last_step;
            assert!(
                reach.reaches(from, to) || from == to,
                "seed {seed}: {tid} merged into {top_id}'s set without a join path to it"
            );
        }
    }
}
