//! Theorem 2 as a property test: the DTRG detector reports a determinacy
//! race **iff** one exists, where ground truth is the transitive-closure
//! oracle over the full step-level computation graph.
//!
//! Additionally the *first* report is checked to be exact: the paper's
//! correctness argument (proof of Theorem 2) picks the race whose second
//! access executes earliest in the depth-first order, and the detector's
//! first report must fire at precisely that access.

use futrace::baselines::ClosureDetector;
use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::compgraph::oracle::Reachability;
use futrace::compgraph::CompGraph;
use futrace::Analyze;
use futrace::runtime::engine::run_analysis_live;
use futrace::util::propcheck::{self, strategies, Config};

/// Index (in the global access stream) of the earliest access that
/// completes a racing pair, or None if the program is race-free.
fn oracle_first_race_index(g: &CompGraph) -> Option<u64> {
    let reach = Reachability::build(g);
    for (j, b) in g.accesses.iter().enumerate() {
        for a in &g.accesses[..j] {
            if a.loc == b.loc
                && (a.is_write || b.is_write)
                && a.step != b.step
                && reach.parallel(a.step, b.step)
            {
                return Some(j as u64);
            }
        }
    }
    None
}

fn check_seed(seed: u64, params: &GenParams) {
    let prog = generate(seed, params);
    let report = Analyze::program(|ctx| {
        execute(ctx, &prog);
    }).run().unwrap().races;
    let oracle = run_analysis_live(
        |ctx| {
            execute(ctx, &prog);
        },
        ClosureDetector::new(),
    )
    .report;
    assert_eq!(
        report.has_races(),
        oracle.has_races(),
        "existence mismatch on seed {seed}: detector={} oracle={} prog={prog:?}",
        report.has_races(),
        oracle.has_races()
    );
    // First-race exactness.
    let truth = oracle_first_race_index(&oracle.graph);
    let got = report.first().map(|r| r.access_index);
    assert_eq!(
        got, truth,
        "first-race index mismatch on seed {seed}: prog={prog:?}"
    );
}

/// 256 cases per family (the old harness ran 200); each case is a fresh
/// program seed drawn from the full `u64` space, shrunk toward 0 on
/// failure, and replayable via the printed `FUTRACE_PROPCHECK_SEED`.
const CASES: u32 = 256;

#[test]
fn detector_matches_oracle_default_mix() {
    propcheck::check(&Config::with_cases(CASES), &strategies::any_u64(), |seed| {
        check_seed(seed, &GenParams::default());
    });
}

#[test]
fn detector_matches_oracle_future_heavy() {
    propcheck::check(&Config::with_cases(CASES), &strategies::any_u64(), |seed| {
        check_seed(seed, &GenParams::future_heavy());
    });
}

#[test]
fn detector_matches_oracle_async_finish() {
    propcheck::check(&Config::with_cases(CASES), &strategies::any_u64(), |seed| {
        check_seed(seed, &GenParams::async_finish_only());
    });
}

#[test]
fn fixed_seed_regression_sweep() {
    // A deterministic sweep that always runs, independent of the property
    // harness's RNG: the first 500 seeds of each parameter family.
    for seed in 0..500u64 {
        check_seed(seed, &GenParams::default());
        check_seed(seed, &GenParams::future_heavy());
        check_seed(seed, &GenParams::async_finish_only());
    }
}
