//! Well-formedness of the serial executor's event stream — the contract
//! every monitor (detector, baselines, graph builder) relies on.

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::runtime::{run_serial, Event, EventLog};
use futrace_util::ids::{FinishId, TaskId};
use std::collections::{HashMap, HashSet};

fn stream_for(seed: u64, params: &GenParams) -> Vec<Event> {
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        execute(ctx, &prog_for(seed, params));
    });
    log.events
}

fn prog_for(seed: u64, params: &GenParams) -> futrace::benchsuite::randomprog::Program {
    generate(seed, params)
}

#[test]
fn every_task_is_created_once_and_ended_once() {
    for seed in 0..100u64 {
        let events = stream_for(seed, &GenParams::default());
        let mut created: HashMap<TaskId, usize> = HashMap::new();
        let mut ended: HashMap<TaskId, usize> = HashMap::new();
        for e in &events {
            match e {
                Event::TaskCreate { child, .. } => *created.entry(*child).or_default() += 1,
                Event::TaskEnd(t) => *ended.entry(*t).or_default() += 1,
                _ => {}
            }
        }
        // Main is never "created" but is ended exactly once.
        assert_eq!(ended.get(&TaskId::MAIN), Some(&1), "seed {seed}");
        for (t, n) in &created {
            assert_eq!(*n, 1, "seed {seed}: {t} created once");
            assert_eq!(ended.get(t), Some(&1), "seed {seed}: {t} ended once");
        }
        assert_eq!(ended.len(), created.len() + 1, "seed {seed}");
    }
}

#[test]
fn task_ids_are_dense_in_spawn_order() {
    for seed in 0..100u64 {
        let events = stream_for(seed, &GenParams::future_heavy());
        let mut next = 1u32;
        for e in &events {
            if let Event::TaskCreate { child, .. } = e {
                assert_eq!(child.0, next, "seed {seed}");
                next += 1;
            }
        }
    }
}

#[test]
fn depth_first_nesting_of_task_lifetimes() {
    // Under serial depth-first execution, TaskCreate/TaskEnd pairs nest
    // like parentheses.
    for seed in 0..100u64 {
        let events = stream_for(seed, &GenParams::default());
        let mut stack = vec![TaskId::MAIN];
        for e in &events {
            match e {
                Event::TaskCreate { parent, child, .. } => {
                    assert_eq!(stack.last(), Some(parent), "seed {seed}");
                    stack.push(*child);
                }
                Event::TaskEnd(t) => {
                    assert_eq!(stack.pop(), Some(*t), "seed {seed}");
                }
                Event::Read(t, _) | Event::Write(t, _) => {
                    assert_eq!(stack.last(), Some(t), "seed {seed}: access attribution");
                }
                Event::Get { waiter, .. } => {
                    assert_eq!(stack.last(), Some(waiter), "seed {seed}");
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "seed {seed}: main ended last");
    }
}

#[test]
fn finish_end_joins_exactly_its_ief_registrants() {
    for seed in 0..100u64 {
        let events = stream_for(seed, &GenParams::default());
        // Expected joins per finish, from the creation events.
        let mut expected: HashMap<FinishId, Vec<TaskId>> = HashMap::new();
        for e in &events {
            if let Event::TaskCreate { child, ief, .. } = e {
                expected.entry(*ief).or_default().push(*child);
            }
        }
        let mut seen_finishes = HashSet::new();
        for e in &events {
            if let Event::FinishEnd(_, f, joined) = e {
                assert!(seen_finishes.insert(*f), "seed {seed}: {f} ends once");
                assert_eq!(
                    joined,
                    &expected.remove(f).unwrap_or_default(),
                    "seed {seed}: {f} joins its IEF registrants in spawn order"
                );
            }
        }
        assert!(
            expected.is_empty(),
            "seed {seed}: every IEF with registrants must end"
        );
    }
}

#[test]
fn gets_target_completed_futures() {
    // In serial depth-first order a future always completed before any
    // get on it (the executor never blocks).
    for seed in 0..100u64 {
        let events = stream_for(seed, &GenParams::future_heavy());
        let mut ended: HashSet<TaskId> = HashSet::new();
        for e in &events {
            match e {
                Event::TaskEnd(t) => {
                    ended.insert(*t);
                }
                Event::Get { awaited, .. } => {
                    assert!(ended.contains(awaited), "seed {seed}: get after completion");
                }
                _ => {}
            }
        }
    }
}
