//! Exhaustive Theorem-2 check over *all* small programs of a bounded
//! grammar — no sampling gaps: every async/finish/future/get/read/write
//! shape up to the size bound is compared against the oracle.
//!
//! Grammar (one shared location, binary trees of constructs):
//!
//! ```text
//! P ::= ε | S P
//! S ::= read | write | async { P } | finish { P } | future { P } | get(k)
//! ```
//!
//! With the bounds below this enumerates tens of thousands of distinct
//! programs, including every example the paper draws (unsynchronized
//! future vs. parent, transitive get chains, finish-scoped asyncs, …).

use futrace::baselines::{run_baseline, BaselineDetector, ClosureDetector};
use futrace::benchsuite::randomprog::{execute, Program, Stmt};
use futrace::Analyze;

/// Enumerates all statement sequences of exactly `size` statements, where
/// nested bodies count toward the size. `futures_in_scope` tracks how many
/// handles a `Get` may reference.
fn enumerate(size: usize, futures_in_scope: usize, depth: usize, out: &mut Vec<Vec<Stmt>>) {
    if size == 0 {
        out.push(Vec::new());
        return;
    }
    // First statement takes `k` units (1 for leaf, 1 + body for blocks),
    // the rest of the sequence takes the remainder.
    let mut firsts: Vec<(Vec<Stmt>, usize, usize)> = Vec::new(); // (stmts, units, new_futures)
    firsts.push((vec![Stmt::Read(0)], 1, 0));
    firsts.push((vec![Stmt::Write(0, 1)], 1, 0));
    for k in 0..futures_in_scope {
        firsts.push((vec![Stmt::Get(k)], 1, 0));
    }
    if depth > 0 {
        for body_size in 0..size {
            let mut bodies = Vec::new();
            enumerate(body_size, futures_in_scope, depth - 1, &mut bodies);
            for b in bodies {
                firsts.push((vec![Stmt::Async(b.clone())], body_size + 1, 0));
                firsts.push((vec![Stmt::Future(b.clone())], body_size + 1, 1));
                firsts.push((vec![Stmt::Finish(b)], body_size + 1, 0));
            }
        }
    }
    for (first, units, new_futures) in firsts {
        if units > size {
            continue;
        }
        let mut rests = Vec::new();
        enumerate(size - units, futures_in_scope + new_futures, depth, &mut rests);
        for rest in rests {
            let mut prog = first.clone();
            prog.extend(rest);
            out.push(prog);
        }
    }
}

#[test]
fn all_small_programs_match_the_oracle() {
    let mut bodies = Vec::new();
    for size in 0..=5 {
        enumerate(size, 0, 2, &mut bodies);
    }
    // Deduplicate (the enumeration can produce the same body via different
    // splits).
    bodies.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    bodies.dedup();
    let total = bodies.len();
    assert!(total > 10_000, "expected a large space, got {total}");

    let mut racy = 0usize;
    for body in bodies {
        let prog = Program {
            body,
            locs: 1,
        };
        let det = Analyze::program(|ctx| {
            execute(ctx, &prog);
        })
        .run()
        .unwrap()
        .has_races();
        let mut oracle = ClosureDetector::new();
        run_baseline(&mut oracle, |ctx| {
            execute(ctx, &prog);
        });
        assert_eq!(
            det,
            oracle.has_races(),
            "disagreement on {prog:?}"
        );
        if det {
            racy += 1;
        }
    }
    // Sanity: the space contains both racy and race-free programs in bulk.
    assert!(racy > 100, "racy programs found: {racy} of {total}");
    assert!(racy < total, "not everything is racy");
    println!("exhaustive: {total} programs, {racy} racy — all verdicts agree");
}
