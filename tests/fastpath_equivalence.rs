//! Fast-path equivalence: the hot-path caches never change a verdict.
//!
//! The detector has two caches on the check path — the per-cell
//! clean-verdict fast path in the shadow memory and the epoch-versioned
//! `precede()` memo in the DTRG. Both are *pure* accelerations: within a
//! graph epoch a clean verdict is monotone, so replaying it can never
//! hide a race, and racy checks are never cached at all. This suite
//! pins that contract over ≥256 random programs: with caching on vs.
//! off, the race *report* (the deduplicated race list and the total
//! detection count) must be byte-identical, serially and under every
//! shard width. Cost counters (memo hits, shadow hits) are *expected*
//! to differ — that is the point of the caches — so they are excluded
//! from the comparison by design.

use std::convert::Infallible;

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::detector::{DetectorConfig, RaceDetector, RaceReport};
use futrace::offline::{run_sharded_events, ShardPlan};
use futrace::runtime::engine::{run_analysis, source};
use futrace::runtime::{run_serial, Event, EventLog};
use futrace::util::propcheck::{self, strategies, Config};

fn with_caching(on: bool) -> RaceDetector {
    RaceDetector::with_config(DetectorConfig {
        caching: on,
        ..DetectorConfig::default()
    })
}

fn record(seed: u64, params: &GenParams) -> Vec<Event> {
    let prog = generate(seed, params);
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        execute(ctx, &prog);
    });
    log.events
}

fn serial_report(events: &[Event], caching: bool) -> RaceReport {
    match run_analysis(source::recorded(events), with_caching(caching)) {
        Ok(out) => out.report.report,
        Err(never) => match never {},
    }
}

fn sharded_report(events: &[Event], shards: usize, caching: bool) -> RaceReport {
    let plan = ShardPlan::with_shards(shards);
    let it = events.iter().cloned().map(Ok as fn(Event) -> Result<Event, Infallible>);
    run_sharded_events(it, &plan, || with_caching(caching))
        .expect("sharded run is infallible here")
        .report
        .report
}

fn assert_reports_identical(label: &str, seed: u64, cached: &RaceReport, uncached: &RaceReport) {
    assert_eq!(
        cached.races, uncached.races,
        "{label}, seed {seed}: race lists diverge with caching on"
    );
    assert_eq!(
        cached.total_detected, uncached.total_detected,
        "{label}, seed {seed}: total_detected diverges with caching on"
    );
}

#[test]
fn caching_never_changes_the_report() {
    // ≥256 random programs from the default mix (async + finish +
    // futures + gets), each checked serially and at shard widths 1, 2,
    // and 4 — cached and uncached runs must produce identical reports.
    propcheck::check(&Config::with_cases(256), &strategies::any_u64(), |seed| {
        let events = record(seed, &GenParams::default());

        let cached = serial_report(&events, true);
        let uncached = serial_report(&events, false);
        assert_reports_identical("serial", seed, &cached, &uncached);

        for shards in [1usize, 2, 4] {
            let cached = sharded_report(&events, shards, true);
            let uncached = sharded_report(&events, shards, false);
            assert_reports_identical(
                &format!("sharded x{shards}"),
                seed,
                &cached,
                &uncached,
            );
        }
    });
}

#[test]
fn caching_pays_off_on_cache_friendly_streams() {
    // Not an equivalence property, but the reason the caches exist: on a
    // representative random program the fast paths must actually fire.
    let events = record(42, &GenParams::default());
    let out = match run_analysis(source::recorded(&events), with_caching(true)) {
        Ok(out) => out,
        Err(never) => match never {},
    };
    let dtrg = &out.report.stats.dtrg;
    assert!(
        dtrg.shadow_hits + dtrg.memo_hits > 0,
        "expected at least one fast-path or memo hit, got stats {dtrg:?}"
    );
}
