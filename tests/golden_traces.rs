//! Golden-trace regression suite for the future-structured workload
//! families: one racy and one race-free `.ftrc` fixture per family,
//! pinned byte-for-byte under `tests/data/`.
//!
//! The fixtures freeze two things at once: the recorded event stream of
//! each family's tiny configuration (any change to a generator, the
//! serial executor's scheduling, or the framed encoder shows up as a
//! byte diff here) and the detector's verdict on it. On top of that,
//! every fixture must produce a byte-identical race report whether it is
//! replayed serially, sharded, or supervised.

use futrace::benchsuite::registry::{self, Scale};
use futrace::offline::StreamWriter;
use futrace::runtime::replay;
use futrace::{AnalysisOutcome, Analyze};

const FAMILIES: [&str; 5] = ["prodcons", "futlist", "futtree", "graphwalk", "actor"];

/// Chunk size the fixtures were recorded with (`tracetool record --tiny
/// --stream --chunk-bytes 256`).
const FIXTURE_CHUNK_BYTES: usize = 256;

fn fixture_path(family: &str, variant: &str) -> String {
    format!(
        "{}/tests/data/{family}_{variant}.ftrc",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn fixture(family: &str, variant: &str) -> Vec<u8> {
    let path = fixture_path(family, variant);
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"))
}

#[test]
fn fixtures_match_a_fresh_recording_byte_for_byte() {
    for family in FAMILIES {
        let w = registry::find(family).expect("family registered");
        for (variant, planted) in [("clean", false), ("racy", true)] {
            let log = w.record(Scale::Tiny, planted);
            let mut writer = StreamWriter::with_chunk_bytes(Vec::new(), FIXTURE_CHUNK_BYTES)
                .expect("writing to a Vec cannot fail");
            replay(&log.events, &mut writer);
            let (encoded, _stats) = writer.finish().expect("writing to a Vec cannot fail");
            assert_eq!(
                encoded,
                fixture(family, variant),
                "{family} {variant}: recording drifted from the pinned fixture — \
                 if the change is intentional, re-record tests/data/ (see its provenance \
                 in tests/golden_traces.rs)"
            );
        }
    }
}

/// Serial, sharded, and supervised replays of the same fixture must
/// produce byte-identical race reports.
fn backends(blob: &[u8]) -> [AnalysisOutcome; 3] {
    let serial = Analyze::trace_bytes(blob).run().expect("serial replay");
    let sharded = Analyze::trace_bytes(blob).shards(2).run().expect("sharded replay");
    let supervised = Analyze::trace_bytes(blob)
        .shards(2)
        .checkpoint_every(2)
        .run()
        .expect("supervised replay");
    [serial, sharded, supervised]
}

#[test]
fn clean_fixtures_are_race_free_on_every_backend() {
    for family in FAMILIES {
        let blob = fixture(family, "clean");
        for (i, out) in backends(&blob).iter().enumerate() {
            assert!(
                !out.has_races(),
                "{family} clean, backend {i}: {:?}",
                out.races
            );
        }
    }
}

#[test]
fn racy_fixtures_report_identical_races_on_every_backend() {
    for family in FAMILIES {
        let blob = fixture(family, "racy");
        let [serial, sharded, supervised] = backends(&blob);
        assert!(serial.has_races(), "{family} racy: planted race not detected");
        let golden = format!("{:?}", serial.races);
        for (name, out) in [("sharded", &sharded), ("supervised", &supervised)] {
            assert_eq!(
                format!("{:?}", out.races),
                golden,
                "{family} racy: {name} report differs from serial"
            );
        }
    }
}
