//! The online-parallel pipeline as a property: `Analyze::program_parallel`
//! must produce the *same verdict* as the serial `Analyze::program` on the
//! same program — same races, same access indices, same structural
//! statistics — regardless of thread count, shard count, or which victim
//! the work-stealing scheduler happens to rob (DESIGN S43).
//!
//! Ground truth here is the serial run, which `tests/equivalence.rs`
//! separately pins to the transitive-closure oracle; chaining the two
//! gives end-to-end soundness for the online path.

use futrace::benchsuite::randomprog::{execute, generate, GenParams, Program};
use futrace::benchsuite::registry::{self, Scale};
use futrace::prelude::*;
use futrace::util::propcheck::{self, strategies, Config};

/// 256 cases per family, matching the serial oracle propcheck.
const CASES: u32 = 256;

/// Serial verdict for a generated program.
fn serial_verdict(prog: &Program) -> AnalysisOutcome {
    Analyze::program(|ctx| {
        execute(ctx, prog);
    })
    .run()
    .unwrap()
}

/// Asserts the parts of the verdict that must be byte-identical between
/// the serial and online backends: the race report and the structural
/// statistics. Cost counters (memo hits, precede calls) legitimately
/// differ once accesses are routed across shards, so they are not
/// compared.
fn assert_same_verdict(context: &str, online: &AnalysisOutcome, serial: &AnalysisOutcome) {
    assert_eq!(
        online.races.races, serial.races.races,
        "race list mismatch: {context}"
    );
    assert_eq!(
        online.races.total_detected, serial.races.total_detected,
        "total_detected mismatch: {context}"
    );
    assert_eq!(
        online.stats.tasks, serial.stats.tasks,
        "task count mismatch: {context}"
    );
    assert_eq!(
        online.stats.future_tasks, serial.stats.future_tasks,
        "future task count mismatch: {context}"
    );
    assert_eq!(
        online.stats.reads, serial.stats.reads,
        "read count mismatch: {context}"
    );
    assert_eq!(
        online.stats.writes, serial.stats.writes,
        "write count mismatch: {context}"
    );
    assert!(
        online.online.is_some(),
        "online telemetry missing: {context}"
    );
}

fn check_seed(seed: u64, params: &GenParams, shards: Option<usize>) {
    let prog = generate(seed, params);
    let serial = serial_verdict(&prog);
    for threads in [1, 2, 4] {
        let mut analyze = Analyze::program_parallel(threads, |ctx| {
            execute(ctx, &prog);
        });
        if let Some(n) = shards {
            analyze = analyze.shards(n);
        }
        let online = analyze.run().unwrap();
        assert_same_verdict(
            &format!("seed {seed} threads {threads} shards {shards:?} prog={prog:?}"),
            &online,
            &serial,
        );
    }
}

#[test]
fn online_matches_serial_default_mix() {
    propcheck::check(&Config::with_cases(CASES), &strategies::any_u64(), |seed| {
        check_seed(seed, &GenParams::default(), None);
    });
}

#[test]
fn online_matches_serial_nontree_heavy_sharded() {
    // Two explicit shards force the queue-routing path even on hosts
    // where `OnlineOptions::auto` would collapse to the inline sink, and
    // the nontree-heavy mix maximises the cross-task joins the DTRG
    // walker has to sequence correctly.
    propcheck::check(&Config::with_cases(CASES), &strategies::any_u64(), |seed| {
        check_seed(seed, &GenParams::nontree_heavy(), Some(2));
    });
}

#[test]
fn online_matches_serial_future_heavy() {
    propcheck::check(&Config::with_cases(CASES), &strategies::any_u64(), |seed| {
        check_seed(seed, &GenParams::future_heavy(), None);
    });
}

/// Every registry workload, clean and (where available) with a planted
/// race: the online verdict at 4 threads / 2 shards must equal the
/// serial engine's, and the planted variants must actually race.
#[test]
fn registry_workloads_agree_clean_and_planted() {
    for w in registry::workloads() {
        let variants: &[bool] = if w.plantable { &[false, true] } else { &[false] };
        for &planted in variants {
            let mut engine = Engine::new(RaceDetector::new());
            w.run_into(&mut engine, Scale::Tiny, planted);
            let (analysis, _) = engine.into_parts();
            let serial = analysis.finish();

            let online = Analyze::program_parallel(4, |ctx| {
                w.run_parallel_into(ctx, Scale::Tiny, planted);
            })
            .shards(2)
            .run()
            .unwrap();

            assert_eq!(
                online.races.races, serial.report.races,
                "race list mismatch on {} (planted={planted})",
                w.name
            );
            assert_eq!(
                online.races.total_detected, serial.report.total_detected,
                "total_detected mismatch on {} (planted={planted})",
                w.name
            );
            if planted {
                assert!(
                    online.has_races(),
                    "planted race not detected online on {}",
                    w.name
                );
            }
        }
    }
}

/// Seeded-scheduler harness: pinning `steal_seed` makes the victim
/// sequence reproducible, and *varying* it perturbs the interleaving —
/// either way the verdict must not move, because determinacy-race
/// verdicts depend only on the program, not the schedule.
#[test]
fn steal_seed_perturbation_leaves_verdict_fixed() {
    // A nontree-heavy program that actually races, so schedule changes
    // would have something to corrupt if the walker mis-sequenced.
    let prog = (0..)
        .map(|seed| generate(seed, &GenParams::nontree_heavy()))
        .find(|p| serial_verdict(p).has_races())
        .unwrap();
    let serial = serial_verdict(&prog);

    for steal_seed in 0..16u64 {
        let online = Analyze::program_parallel(4, |ctx| {
            execute(ctx, &prog);
        })
        .steal_seed(steal_seed)
        .shards(2)
        .run()
        .unwrap();
        assert_same_verdict(&format!("steal_seed {steal_seed}"), &online, &serial);
    }

    // Same seed twice: the seeded scheduler is a reproduction harness,
    // so a repeat run must agree with itself bit-for-bit on the verdict.
    let run = |seed: u64| {
        Analyze::program_parallel(4, |ctx| {
            execute(ctx, &prog);
        })
        .steal_seed(seed)
        .run()
        .unwrap()
    };
    let (a, b) = (run(7), run(7));
    assert_eq!(a.races.races, b.races.races);
    assert_eq!(a.races.total_detected, b.races.total_detected);
}
