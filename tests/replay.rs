//! Trace-based analysis: recording an execution's event stream and
//! replaying it into a fresh detector must reproduce the live verdict
//! exactly — the detector is a pure function of the serial depth-first
//! event stream (the property that made the paper's bytecode-level
//! instrumentation sufficient).

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::detector::RaceDetector;
use futrace::runtime::monitor::Pair;
use futrace::runtime::{replay, run_serial, EventLog, Monitor};

#[test]
fn replayed_detector_matches_live_detector() {
    for seed in 0..150u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        // Live: detector + recorder driven together.
        let mut mon = Pair(RaceDetector::new(), EventLog::new());
        run_serial(&mut mon, |ctx| {
            execute(ctx, &prog);
        });
        let Pair(live, log) = mon;

        // Offline: replay the trace into a fresh detector.
        let mut offline = RaceDetector::new();
        replay(&log.events, &mut offline);

        assert_eq!(live.has_races(), offline.has_races(), "seed {seed}");
        assert_eq!(live.races(), offline.races(), "seed {seed}");
        let (ls, os) = (live.stats(), offline.stats());
        assert_eq!(ls.shared_mem(), os.shared_mem(), "seed {seed}");
        assert_eq!(ls.nt_joins(), os.nt_joins(), "seed {seed}");
        assert_eq!(ls.tasks, os.tasks, "seed {seed}");
        assert_eq!(
            live.memory_footprint(),
            offline.memory_footprint(),
            "seed {seed}"
        );
    }
}

#[test]
fn replay_into_null_is_harmless() {
    let prog = generate(5, &GenParams::default());
    let mut mon = EventLog::new();
    run_serial(&mut mon, |ctx| {
        execute(ctx, &prog);
    });
    let mut null = futrace::runtime::NullMonitor;
    replay(&mon.events, &mut null);
}

// Silence the unused-import lint for the monitor re-export check above.
#[allow(dead_code)]
fn _uses_monitor_trait<M: Monitor>(_: &M) {}
