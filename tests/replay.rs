//! Trace-based analysis: recording an execution's event stream and
//! replaying it into a fresh detector must reproduce the live verdict
//! exactly — the detector is a pure function of the serial depth-first
//! event stream (the property that made the paper's bytecode-level
//! instrumentation sufficient).
//!
//! Both directions go through the analysis engine: live runs wrap the
//! detector in an [`Engine`] monitor, replays feed the recorded stream
//! back through `run_analysis_recorded`, and the engine's own stream
//! accounting (event/check counters) must agree between the two.

use futrace::benchsuite::randomprog::{execute, generate, GenParams};
use futrace::detector::RaceDetector;
use futrace::runtime::engine::{run_analysis_recorded, Analysis, Engine};
use futrace::runtime::monitor::Pair;
use futrace::runtime::{run_serial, EventLog, Monitor};

#[test]
fn replayed_detector_matches_live_detector() {
    for seed in 0..150u64 {
        let prog = generate(seed, &GenParams::future_heavy());
        // Live: engine-wrapped detector + recorder driven together.
        let mut mon = Pair(Engine::new(RaceDetector::new()), EventLog::new());
        run_serial(&mut mon, |ctx| {
            execute(ctx, &prog);
        });
        let Pair(engine, log) = mon;
        let (det, live_counters) = engine.into_parts();
        let live = det.finish();

        // Offline: replay the trace through the same driver.
        let out = run_analysis_recorded(&log.events, RaceDetector::new());
        let offline = out.report;

        assert_eq!(
            live.report.has_races(),
            offline.report.has_races(),
            "seed {seed}"
        );
        assert_eq!(live.report.races, offline.report.races, "seed {seed}");
        let (ls, os) = (&live.stats, &offline.stats);
        assert_eq!(ls.shared_mem(), os.shared_mem(), "seed {seed}");
        assert_eq!(ls.nt_joins(), os.nt_joins(), "seed {seed}");
        assert_eq!(ls.tasks, os.tasks, "seed {seed}");
        assert_eq!(live.footprint, offline.footprint, "seed {seed}");

        // The engine numbers the same stream both times.
        assert_eq!(live_counters.events, out.counters.events, "seed {seed}");
        assert_eq!(
            live_counters.control_events, out.counters.control_events,
            "seed {seed}"
        );
        assert_eq!(live_counters.reads, out.counters.reads, "seed {seed}");
        assert_eq!(live_counters.writes, out.counters.writes, "seed {seed}");
    }
}

#[test]
fn replay_into_null_is_harmless() {
    let prog = generate(5, &GenParams::default());
    let mut mon = EventLog::new();
    run_serial(&mut mon, |ctx| {
        execute(ctx, &prog);
    });
    let mut null = futrace::runtime::NullMonitor;
    futrace::runtime::replay(&mon.events, &mut null);
}

// Silence the unused-import lint for the monitor re-export check above.
#[allow(dead_code)]
fn _uses_monitor_trait<M: Monitor>(_: &M) {}
